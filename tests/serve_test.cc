// The serve layer: JSON round-trips, content-hash stability, cache LRU
// behavior, and the SolveScheduler's contract — deterministic result-cache
// hits, deadline trips surfacing partial payloads, typed backpressure,
// priority aging (no starvation), graceful drain — plus the batch front end
// end to end.

#include "src/serve/scheduler.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "src/api/instance.h"
#include "src/api/registry.h"
#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/common/run_context.h"
#include "src/common/thread_pool.h"
#include "src/core/instances.h"
#include "src/gen/toy.h"
#include "src/serve/batch.h"
#include "src/serve/cache.h"
#include "src/serve/json.h"
#include "src/serve/resilience.h"

namespace scwsc {
namespace {

using api::InstancePtr;
using api::SolveRequest;
using api::SolveResult;
using serve::JobOutcome;
using serve::SolveJob;
using serve::SolveScheduler;

InstancePtr ToyInstance() {
  auto instance = api::InstanceSnapshot::FromTable(
      gen::MakeEntitiesTable(),
      pattern::CostFunction(pattern::CostKind::kMax));
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return *instance;
}

SolveJob MakeJob(InstancePtr instance, const std::string& solver,
                 std::size_t k = 3, double fraction = 0.5,
                 const std::vector<std::string>& options = {}) {
  auto request = SolveRequest::Builder(std::move(instance))
                     .WithK(k)
                     .WithCoverage(fraction)
                     .WithOptions(options)
                     .Build();
  EXPECT_TRUE(request.ok()) << request.status().ToString();
  SolveJob job;
  job.solver = solver;
  job.request = *std::move(request);
  return job;
}

/// Shared state for the two test stubs: a gate the GatedSolver blocks on
/// (opened for everyone, or one release token at a time) and the execution
/// order both stubs record.
struct GateState {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int tokens = 0;  // one blocked GatedSolver proceeds per token
  std::vector<std::string> ran;  // labels, in execution order
};

GateState& Gate() {
  static GateState* state = new GateState();
  return *state;
}

void OpenGate() {
  std::lock_guard<std::mutex> lock(Gate().mu);
  Gate().open = true;
  Gate().cv.notify_all();
}

/// Lets exactly one blocked GatedSolver finish.
void ReleaseOne() {
  std::lock_guard<std::mutex> lock(Gate().mu);
  ++Gate().tokens;
  Gate().cv.notify_all();
}

void ResetGate() {
  std::lock_guard<std::mutex> lock(Gate().mu);
  Gate().open = false;
  Gate().tokens = 0;
  Gate().ran.clear();
}

/// Blocks until the gate opens (or a release token arrives), then records
/// its label. Trips cooperatively while waiting, surfacing a partial
/// payload like real solvers do.
class GatedSolver : public api::Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    GateState& gate = Gate();
    {
      std::unique_lock<std::mutex> lock(gate.mu);
      // Wait in slices so a deadline on the run context still trips while
      // the gate stays shut.
      while (!gate.open && gate.tokens == 0) {
        if (run_context != nullptr &&
            run_context->Check() != TripKind::kNone) {
          SolveResult partial;
          partial.labels = {"partial-" + request.label};
          partial.audit.bookkeeping_consistent = true;
          return TripStatus(run_context->tripped(), "gated solve")
              .WithPayload(std::move(partial));
        }
        gate.cv.wait_for(lock, std::chrono::milliseconds(1));
      }
      if (!gate.open && gate.tokens > 0) --gate.tokens;
      gate.ran.push_back(request.label);
    }
    SolveResult result;
    result.labels = {"ran-" + request.label};
    result.covered = request.instance->num_elements();
    result.audit.bookkeeping_consistent = true;
    return result;
  }
};

SCWSC_REGISTER_SOLVER(GatedSolver,
                      api::SolverInfo{"test-gated", "serve test stub", 0, {}});

/// Records its label and returns immediately — never blocks.
class RecorderSolver : public api::Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext*) const override {
    {
      std::lock_guard<std::mutex> lock(Gate().mu);
      Gate().ran.push_back(request.label);
    }
    SolveResult result;
    result.labels = {"ran-" + request.label};
    result.covered = request.instance->num_elements();
    result.audit.bookkeeping_consistent = true;
    return result;
  }
};

SCWSC_REGISTER_SOLVER(
    RecorderSolver,
    api::SolverInfo{"test-recorder", "serve test stub", 0, {}});

// ---------------------------------------------------------------- JSON ----

TEST(ServeJsonTest, RoundTripsThroughDumpAndParse) {
  serve::JsonObject object;
  object["name"] = std::string("serve");
  object["count"] = std::size_t{42};
  object["ratio"] = 0.5;
  object["on"] = true;
  serve::JsonArray array;
  array.push_back(serve::JsonValue(1.0));
  array.push_back(serve::JsonValue(std::string("two")));
  object["items"] = serve::JsonValue(std::move(array));

  const std::string dumped = serve::JsonValue(std::move(object)).Dump();
  auto parsed = serve::ParseJson(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), dumped);  // canonical form is a fixed point

  EXPECT_EQ(parsed->Find("name")->as_string(), "serve");
  EXPECT_EQ(parsed->Find("count")->as_number(), 42.0);
  EXPECT_TRUE(parsed->Find("on")->as_bool());
  EXPECT_EQ(parsed->Find("items")->as_array().size(), 2u);
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(ServeJsonTest, IntegralNumbersDumpWithoutFraction) {
  EXPECT_EQ(serve::JsonValue(3.0).Dump(), "3");
  EXPECT_EQ(serve::JsonValue(3.5).Dump(), "3.5");
}

TEST(ServeJsonTest, MalformedInputsAreTypedErrors) {
  EXPECT_FALSE(serve::ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(serve::ParseJson("[1, 2").ok());
  EXPECT_FALSE(serve::ParseJson("{} trailing").ok());
  EXPECT_FALSE(serve::ParseJson("nul").ok());
  auto status = serve::ParseJson("{\"a\": }").status();
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST(ServeJsonTest, TruncatedInputsAreTypedErrors) {
  for (const char* text :
       {"", "{", "{\"a\"", "{\"a\":", "{\"a\":1,", "[", "[1,", "\"unterminat",
        "tru", "-"}) {
    auto parsed = serve::ParseJson(text);
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << "input: " << text;
  }
}

TEST(ServeJsonTest, NestingBeyondTheDepthLimitIsRejected) {
  serve::JsonParseLimits limits;
  limits.max_depth = 8;
  const std::string fits(8, '[');
  EXPECT_TRUE(serve::ParseJson(fits + std::string(8, ']'), limits).ok());
  const std::string too_deep(9, '[');
  auto rejected = serve::ParseJson(too_deep + std::string(9, ']'), limits);
  ASSERT_TRUE(rejected.status().IsInvalidArgument());
  EXPECT_NE(rejected.status().message().find("nesting"), std::string::npos);

  // A hostile megabyte of '[' with the default limits errors instead of
  // overflowing the parser's stack.
  EXPECT_FALSE(serve::ParseJson(std::string(1 << 20, '[')).ok());

  // Mixed object/array nesting counts every level.
  limits.max_depth = 3;
  EXPECT_TRUE(serve::ParseJson(R"({"a": [{"b": 1}]})", limits).ok());
  EXPECT_FALSE(serve::ParseJson(R"({"a": [{"b": []}]})", limits).ok());
}

TEST(ServeJsonTest, InputBeyondTheSizeLimitIsRejected) {
  serve::JsonParseLimits limits;
  limits.max_bytes = 16;
  EXPECT_TRUE(serve::ParseJson("[1, 2, 3]", limits).ok());
  auto rejected = serve::ParseJson("[1, 2, 3, 4, 5, 6]", limits);
  ASSERT_TRUE(rejected.status().IsInvalidArgument());
  EXPECT_NE(rejected.status().message().find("exceeds"), std::string::npos);
  limits.max_bytes = 0;  // 0 = unlimited
  EXPECT_TRUE(serve::ParseJson("[1, 2, 3, 4, 5, 6]", limits).ok());
}

TEST(ServeJsonTest, NonFiniteNumbersAreRejected) {
  // JSON has no NaN/Infinity literals, and "1e999" overflows double to
  // infinity: both must be typed errors, not silent poison values.
  EXPECT_FALSE(serve::ParseJson("NaN").ok());
  EXPECT_FALSE(serve::ParseJson("Infinity").ok());
  auto overflow = serve::ParseJson("1e999");
  ASSERT_TRUE(overflow.status().IsInvalidArgument());
  EXPECT_NE(overflow.status().message().find("not finite"), std::string::npos);
  EXPECT_FALSE(serve::ParseJson("-1e999").ok());
  EXPECT_FALSE(serve::ParseJson("[1, 1e999]").ok());
  EXPECT_TRUE(serve::ParseJson("1e308").ok());  // near the edge but finite
}

TEST(ServeJsonTest, DuplicateObjectKeysAreRejected) {
  auto dup = serve::ParseJson(R"({"a": 1, "a": 2})");
  ASSERT_TRUE(dup.status().IsInvalidArgument());
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos);
  EXPECT_FALSE(serve::ParseJson(R"({"x": {"a": 1, "b": 2, "a": 3}})").ok());
  EXPECT_TRUE(serve::ParseJson(R"({"a": 1, "b": {"a": 2}})").ok());
}

// -------------------------------------------------------------- caches ----

TEST(ServeCacheTest, ContentHashIsStableAndContentSensitive) {
  InstancePtr a = ToyInstance();
  InstancePtr b = ToyInstance();
  // Two snapshots of identical data hash identically...
  EXPECT_EQ(serve::ContentHash(*a), serve::ContentHash(*b));

  // ...while different data hashes differently.
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0, 1}, 1.0, "s0").ok());
  auto other = api::InstanceSnapshot::FromSetSystem(std::move(system));
  ASSERT_TRUE(other.ok());
  EXPECT_NE(serve::ContentHash(*a), serve::ContentHash(**other));
  EXPECT_GT(serve::ApproxSnapshotBytes(*a), 0u);
}

// Per-shard hashes chain into the content hash, and the snapshot cache
// tracks which shard hashes are resident so unchanged shards are detected
// when a new snapshot version arrives.
TEST(ServeCacheTest, ShardHashesChainIntoContentHashAndDetectSharing) {
  auto build = [](ElementId perturbed) {
    SetSystem system(512);
    for (int s = 0; s < 8; ++s) {
      std::vector<ElementId> elements;
      for (ElementId e = static_cast<ElementId>(s * 64);
           e < static_cast<ElementId>(s * 64 + 40); ++e) {
        elements.push_back(e);
      }
      if (s == 7 && perturbed != 0) elements[0] = perturbed;
      EXPECT_TRUE(
          system.AddSet(elements, 2.0 + s, "s" + std::to_string(s)).ok());
    }
    ShardingOptions sharding;
    sharding.num_shards = 4;
    sharding.min_shard_elements = 1;
    auto instance =
        api::InstanceSnapshot::FromSetSystem(std::move(system), sharding);
    EXPECT_TRUE(instance.ok()) << instance.status().ToString();
    return *instance;
  };
  // v2 rewrites one element inside the last shard ([384, 512)) only.
  InstancePtr v1 = build(0);
  InstancePtr v2 = build(500);
  ASSERT_EQ(v1->num_shards(), 4u);
  EXPECT_NE(serve::ContentHash(*v1), serve::ContentHash(*v2));
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(v1->shard_hashes()[s], v2->shard_hashes()[s]) << "shard " << s;
  }
  EXPECT_NE(v1->shard_hashes()[3], v2->shard_hashes()[3]);

  obs::MetricRegistry metrics;
  serve::SnapshotCache cache(1 << 20, &metrics);
  ASSERT_TRUE(cache.Insert(serve::ContentHash(*v1), v1).ok());
  // Three of v2's four shards are byte-identical to resident data.
  EXPECT_EQ(cache.ResidentShardOverlap(*v2), 3u);
  ASSERT_TRUE(cache.Insert(serve::ContentHash(*v2), v2).ok());
  EXPECT_EQ(metrics.CounterValue("serve.snapshot_cache.shard_shared"), 3u);
}

TEST(ServeCacheTest, SnapshotCacheEvictsLeastRecentlyUsedByBytes) {
  InstancePtr instance = ToyInstance();
  const std::size_t bytes = serve::ApproxSnapshotBytes(*instance);
  obs::MetricRegistry metrics;
  // Room for roughly one snapshot: inserting a second evicts the first.
  serve::SnapshotCache cache(bytes + bytes / 2, &metrics);
  cache.Insert(1, instance);
  cache.Insert(2, ToyInstance());
  EXPECT_EQ(cache.Lookup(1), nullptr);   // evicted
  EXPECT_NE(cache.Lookup(2), nullptr);   // the newest entry survives
  EXPECT_EQ(metrics.CounterValue("serve.snapshot_cache.evictions"), 1u);
  EXPECT_EQ(metrics.CounterValue("serve.snapshot_cache.hits"), 1u);
  EXPECT_EQ(metrics.CounterValue("serve.snapshot_cache.misses"), 1u);
}

TEST(ServeCacheTest, ResultCacheKeySeparatesOptionSpellingsByCanonicalForm) {
  InstancePtr instance = ToyInstance();
  SolveJob canonical =
      MakeJob(instance, "cmc", 3, 0.5, {"max_budget_rounds=64"});
  SolveJob alias = MakeJob(instance, "cmc", 3, 0.5, {"max-budget-rounds=64"});
  // The registry canonicalizes before the scheduler builds keys; here the
  // raw bags differ, so the keys differ — MakeResultKey is spelling-exact.
  auto key_canonical = serve::MakeResultKey(7, "cmc", canonical.request);
  auto key_alias = serve::MakeResultKey(7, "cmc", alias.request);
  EXPECT_TRUE(key_canonical < key_alias || key_alias < key_canonical);

  serve::ResultCache cache(2);
  SolveResult result;
  result.total_cost = 5.0;
  cache.Insert(key_canonical, result);
  ASSERT_TRUE(cache.Lookup(key_canonical).has_value());
  EXPECT_EQ(cache.Lookup(key_canonical)->total_cost, 5.0);
  EXPECT_FALSE(cache.Lookup(key_alias).has_value());
}

TEST(ServeCacheTest, OversizedSnapshotIsRejectedWithoutEvictingTheCache) {
  InstancePtr small = ToyInstance();
  const std::size_t small_bytes = serve::ApproxSnapshotBytes(*small);

  // A set system an order of magnitude bigger than the budget.
  SetSystem big_system(512);
  for (int s = 0; s < 64; ++s) {
    std::vector<ElementId> elements;
    for (ElementId e = 0; e < 512; ++e) elements.push_back(e);
    ASSERT_TRUE(
        big_system.AddSet(elements, 1.0, "big-" + std::to_string(s)).ok());
  }
  auto big = api::InstanceSnapshot::FromSetSystem(std::move(big_system));
  ASSERT_TRUE(big.ok());
  const std::size_t big_bytes = serve::ApproxSnapshotBytes(**big);
  ASSERT_GT(big_bytes, 2 * small_bytes);

  obs::MetricRegistry metrics;
  serve::SnapshotCache cache(big_bytes / 2, &metrics);
  ASSERT_TRUE(cache.Insert(1, small).ok());

  // The oversized entry is refused with a typed error and a counter —
  // the resident entry is NOT sacrificed for an instance that can never fit.
  Status rejected = cache.Insert(2, *big);
  EXPECT_TRUE(rejected.IsResourceExhausted());
  EXPECT_NE(rejected.message().find("exceeds"), std::string::npos);
  EXPECT_EQ(metrics.CounterValue("serve.snapshot_cache.oversized"), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Lookup(1), nullptr);  // survivor intact
  EXPECT_EQ(cache.Lookup(2), nullptr);

  // Null inserts are typed errors too, not crashes.
  EXPECT_TRUE(cache.Insert(3, nullptr).IsInvalidArgument());
}

TEST(ServeCacheTest, ResultCacheLruHoldsExactlyCapacityEntries) {
  serve::ResultCache cache(2);
  SolveResult result;
  serve::ResultKey a, b, c;
  a.snapshot_hash = 1;
  b.snapshot_hash = 2;
  c.snapshot_hash = 3;
  cache.Insert(a, result);
  cache.Insert(b, result);
  ASSERT_EQ(cache.size(), 2u);

  // Touch `a` so `b` is the LRU victim when `c` arrives.
  ASSERT_TRUE(cache.Lookup(a).has_value());
  cache.Insert(c, result);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(a).has_value());
  EXPECT_FALSE(cache.Lookup(b).has_value());
  EXPECT_TRUE(cache.Lookup(c).has_value());

  // Re-inserting an existing key replaces in place — no growth, no evict.
  cache.Insert(a, result);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(c).has_value());
}

TEST(ServeCacheTest, CorruptedResultEntriesAreQuarantinedNotServed) {
  obs::MetricRegistry metrics;
  serve::ResultCache cache(4, &metrics);
  SolveResult result;
  result.total_cost = 12.5;
  result.covered = 9;
  result.labels = {"p1", "p2"};
  serve::ResultKey key;
  key.snapshot_hash = 99;

  // Checksums are content-sensitive: any served-back field matters.
  SolveResult tweaked = result;
  tweaked.covered = 10;
  EXPECT_NE(serve::ResultChecksum(result), serve::ResultChecksum(tweaked));

  {
    // Insert under an armed corruption fault: the stored bits are flipped
    // after the (clean) checksum was recorded.
    ScopedFaultPlan chaos(/*seed=*/3);
    chaos.plan().Arm(FaultPoint::kResultCacheCorrupt, 1.0);
    cache.Insert(key, result);
  }
  ASSERT_EQ(cache.size(), 1u);

  // The poisoned entry is never served: lookup detects the mismatch,
  // quarantines (erases) it and reports a miss.
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_EQ(metrics.CounterValue("serve.result_cache.quarantined"), 1u);
  EXPECT_EQ(cache.size(), 0u);

  // A clean re-insert serves normally again.
  cache.Insert(key, result);
  auto served = cache.Lookup(key);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->total_cost, 12.5);
  EXPECT_EQ(metrics.CounterValue("serve.result_cache.quarantined"), 1u);
}

// ----------------------------------------------------------- scheduler ----

TEST(SolveSchedulerTest, DeterministicSolvesHitTheResultCache) {
  ThreadPool pool(2);
  SolveScheduler scheduler(&pool);
  InstancePtr instance = ToyInstance();

  auto first = scheduler.Enqueue(MakeJob(instance, "cwsc"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  JobOutcome cold = first->get();
  ASSERT_TRUE(cold.result.ok()) << cold.result.status().ToString();
  EXPECT_FALSE(cold.from_result_cache);

  // Same job again — and once under a different case spelling; both must be
  // served from cache with bit-identical results.
  for (const char* spelling : {"cwsc", "CWSC"}) {
    auto again = scheduler.Enqueue(MakeJob(instance, spelling));
    ASSERT_TRUE(again.ok());
    JobOutcome warm = again->get();
    ASSERT_TRUE(warm.result.ok());
    EXPECT_TRUE(warm.from_result_cache) << spelling;
    EXPECT_EQ(warm.result->labels, cold.result->labels);
    EXPECT_EQ(warm.result->total_cost, cold.result->total_cost);
  }
  EXPECT_GE(scheduler.metrics().CounterValue("serve.result_cache.hits"), 2u);

  // A different k is a different key: no false sharing.
  auto other = scheduler.Enqueue(MakeJob(instance, "cwsc", 2));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->get().from_result_cache);
}

TEST(SolveSchedulerTest, DeadlineTripSurfacesPartialPayload) {
  ResetGate();
  ThreadPool pool(2);
  SolveScheduler scheduler(&pool);
  SolveJob job = MakeJob(ToyInstance(), "test-gated");
  job.request.deadline = std::chrono::milliseconds(20);
  job.request.label = "deadline";

  auto future = scheduler.Enqueue(std::move(job));
  ASSERT_TRUE(future.ok()) << future.status().ToString();
  JobOutcome outcome = future->get();  // gate never opens; deadline trips

  ASSERT_FALSE(outcome.result.ok());
  EXPECT_TRUE(outcome.result.status().IsInterruption())
      << outcome.result.status().ToString();
  const auto* partial = outcome.result.status().payload<SolveResult>();
  ASSERT_NE(partial, nullptr);
  EXPECT_EQ(partial->labels, std::vector<std::string>{"partial-deadline"});
  EXPECT_FALSE(outcome.from_result_cache);

  // Deadline-bearing jobs must not poison the cache: a deadline-free rerun
  // actually runs (gate open) instead of replaying the partial.
  OpenGate();
  auto rerun = scheduler.Enqueue(MakeJob(ToyInstance(), "test-gated"));
  ASSERT_TRUE(rerun.ok());
  JobOutcome full = rerun->get();
  ASSERT_TRUE(full.result.ok()) << full.result.status().ToString();
  EXPECT_FALSE(full.from_result_cache);
}

TEST(SolveSchedulerTest, BackpressureRejectsWithResourceExhausted) {
  ResetGate();
  ThreadPool pool(2);
  serve::SchedulerOptions options;
  options.max_queue_depth = 1;
  SolveScheduler scheduler(&pool, options);

  SolveJob blocked = MakeJob(ToyInstance(), "test-gated");
  blocked.request.label = "holds-the-queue";
  auto admitted = scheduler.Enqueue(std::move(blocked));
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();

  // The queue is now at depth: the next job is refused, typed, non-blocking.
  auto rejected = scheduler.Enqueue(MakeJob(ToyInstance(), "cwsc"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  EXPECT_GE(scheduler.metrics().CounterValue("serve.jobs.rejected"), 1u);

  OpenGate();
  EXPECT_TRUE(admitted->get().result.ok());
  // Capacity freed: admission works again.
  auto after = scheduler.Enqueue(MakeJob(ToyInstance(), "cwsc"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->get().result.ok());
}

TEST(SolveSchedulerTest, AgedLowPriorityJobOutranksFreshHighPriority) {
  ResetGate();
  // Both workers are held at the gate while two contenders queue up; then
  // ReleaseOne frees exactly one worker, which therefore runs both
  // contenders sequentially — the pop order IS the recorded order, no race.
  ThreadPool pool(2);
  serve::SchedulerOptions options;
  options.aging_interval_seconds = 0.01;  // 10 ms of waiting = +1 level
  SolveScheduler scheduler(&pool, options);

  InstancePtr instance = ToyInstance();
  std::vector<std::future<JobOutcome>> holders;
  for (std::size_t i = 0; i < 2; ++i) {  // occupy both workers
    // Distinct k per job: result-cache keys must not collide, or the second
    // contender would be served from cache without ever "running".
    SolveJob hold = MakeJob(instance, "test-gated", /*k=*/1 + i);
    hold.request.label = "hold-" + std::to_string(i);
    auto f = scheduler.Enqueue(std::move(hold));
    ASSERT_TRUE(f.ok());
    holders.push_back(std::move(*f));
  }

  SolveJob batch_job = MakeJob(instance, "test-recorder", /*k=*/5);
  batch_job.request.label = "batch";
  batch_job.priority = 0;
  auto batch_future = scheduler.Enqueue(std::move(batch_job));
  ASSERT_TRUE(batch_future.ok());

  // Let the batch job age well past the interactive job's static edge.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  SolveJob interactive = MakeJob(instance, "test-recorder", /*k=*/6);
  interactive.request.label = "interactive";
  interactive.priority = 3;  // fresh: effective 3; batch: 0 + ~10 levels
  auto interactive_future = scheduler.Enqueue(std::move(interactive));
  ASSERT_TRUE(interactive_future.ok());

  ReleaseOne();  // one worker frees and drains both contenders in pop order
  batch_future->get();
  interactive_future->get();
  OpenGate();  // now let the remaining holder finish
  for (auto& f : holders) f.get();

  // Execution order: the aged batch job ran before the fresh interactive
  // one — a flood of high priorities cannot starve waiting work.
  std::vector<std::string> ran;
  {
    std::lock_guard<std::mutex> lock(Gate().mu);
    ran = Gate().ran;
  }
  auto pos = [&](const std::string& label) {
    for (std::size_t i = 0; i < ran.size(); ++i) {
      if (ran[i] == label) return i;
    }
    return ran.size();
  };
  ASSERT_LT(pos("batch"), ran.size());
  ASSERT_LT(pos("interactive"), ran.size());
  EXPECT_LT(pos("batch"), pos("interactive"));
}

TEST(SolveSchedulerTest, DrainStopsAdmissionAndCompletesAcceptedJobs) {
  ResetGate();
  OpenGate();  // gated jobs run through immediately
  ThreadPool pool(2);
  auto scheduler = std::make_unique<SolveScheduler>(&pool);
  InstancePtr instance = ToyInstance();

  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 8; ++i) {
    auto f = scheduler->Enqueue(MakeJob(instance, "cwsc", 3, 0.5));
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  scheduler->Drain();
  EXPECT_EQ(scheduler->in_flight(), 0u);
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().result.ok());  // every accepted future completed
  }
  auto late = scheduler->Enqueue(MakeJob(instance, "cwsc"));
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsCancelled()) << late.status().ToString();
  scheduler.reset();  // destructor drains again: idempotent
}

TEST(SolveSchedulerTest, UnknownSolverFailsTheJobNotTheScheduler) {
  ThreadPool pool(2);
  SolveScheduler scheduler(&pool);
  auto future = scheduler.Enqueue(MakeJob(ToyInstance(), "no-such-solver"));
  ASSERT_TRUE(future.ok());  // admission succeeds; the job itself fails
  JobOutcome outcome = future->get();
  EXPECT_TRUE(outcome.result.status().IsNotFound());
  EXPECT_GE(scheduler.metrics().CounterValue("serve.jobs.failed"), 1u);
}

// ------------------------------------------------------------ resilience ----

TEST(SolveSchedulerTest, ExhaustedRetriesSurfaceTheInjectedError) {
  ScopedFaultPlan chaos(/*seed=*/11);
  chaos.plan().Arm(FaultPoint::kSolverError, 1.0);  // every attempt fails

  ThreadPool pool(2);
  serve::SchedulerOptions options;
  options.resilience.retry.max_attempts = 3;
  options.resilience.retry.initial_backoff_ms = 0.1;
  options.resilience.retry.max_backoff_ms = 1.0;
  SolveScheduler scheduler(&pool, options);

  auto future = scheduler.Enqueue(MakeJob(ToyInstance(), "cwsc"));
  ASSERT_TRUE(future.ok());
  JobOutcome outcome = future->get();
  ASSERT_FALSE(outcome.result.ok());
  EXPECT_TRUE(outcome.result.status().IsInternal());
  EXPECT_NE(outcome.result.status().message().find("injected fault"),
            std::string::npos);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(scheduler.metrics().CounterValue("serve.retries.attempted"), 2u);
  EXPECT_EQ(scheduler.metrics().CounterValue("serve.retries.exhausted"), 1u);
  EXPECT_EQ(scheduler.metrics().CounterValue("serve.faults.solver_error"), 3u);
  EXPECT_GE(scheduler.metrics().CounterValue("serve.jobs.failed"), 1u);
}

TEST(SolveSchedulerTest, RetriesRecoverFromTransientInjectedErrors) {
  ScopedFaultPlan chaos(/*seed=*/20240808);
  chaos.plan().Arm(FaultPoint::kSolverError, 0.5);

  ThreadPool pool(2);
  serve::SchedulerOptions options;
  options.resilience.retry.max_attempts = 30;
  options.resilience.retry.initial_backoff_ms = 0.1;
  options.resilience.retry.max_backoff_ms = 1.0;
  options.resilience.retry_budget.burst = 100.0;
  SolveScheduler scheduler(&pool, options);

  // One job at a time: the fault draw sequence is consumed sequentially, so
  // with p = 0.5 and 30 attempts the job recovers (0.5^30 failure odds,
  // deterministic for a fixed seed anyway).
  auto future = scheduler.Enqueue(MakeJob(ToyInstance(), "cwsc"));
  ASSERT_TRUE(future.ok());
  JobOutcome outcome = future->get();
  ASSERT_TRUE(outcome.result.ok()) << outcome.result.status().ToString();
  EXPECT_GE(outcome.attempts, 1);
  EXPECT_TRUE(outcome.result->audit.bookkeeping_consistent);
  // Provenance: a retried success is NOT a degraded result.
  EXPECT_TRUE(outcome.degraded_from.empty());
}

TEST(SolveSchedulerTest, InjectedThrowsBecomeTypedInternalErrors) {
  ScopedFaultPlan chaos(/*seed=*/4);
  chaos.plan().Arm(FaultPoint::kSolverThrow, 1.0);

  ThreadPool pool(2);
  SolveScheduler scheduler(&pool);  // no retries: the throw surfaces once
  auto future = scheduler.Enqueue(MakeJob(ToyInstance(), "cwsc"));
  ASSERT_TRUE(future.ok());
  JobOutcome outcome = future->get();
  ASSERT_FALSE(outcome.result.ok());
  EXPECT_TRUE(outcome.result.status().IsInternal());
  EXPECT_NE(outcome.result.status().message().find("solver threw"),
            std::string::npos);
  EXPECT_EQ(scheduler.metrics().CounterValue("serve.faults.solver_throw"), 1u);
}

TEST(SolveSchedulerTest, OpenBreakerDegradesOntoTheLadder) {
  ThreadPool pool(2);
  serve::SchedulerOptions options;
  options.resilience.breaker.enabled = true;
  options.resilience.breaker.failure_threshold = 1;
  options.resilience.breaker.open_seconds = 60.0;  // stays open for the test
  options.resilience.ladder = serve::DegradationLadder::Default();
  SolveScheduler scheduler(&pool, options);
  InstancePtr instance = ToyInstance();

  {
    // One injected failure opens exact's breaker (threshold 1).
    ScopedFaultPlan chaos(/*seed=*/8);
    chaos.plan().Arm(FaultPoint::kSolverError, 1.0);
    auto failing = scheduler.Enqueue(MakeJob(instance, "exact"));
    ASSERT_TRUE(failing.ok());
    EXPECT_TRUE(failing->get().result.status().IsInternal());
  }
  EXPECT_EQ(scheduler.breakers().ForSolver("exact").state(),
            serve::CircuitBreaker::State::kOpen);
  EXPECT_GE(scheduler.metrics().CounterValue("serve.breaker.opened"), 1u);

  // With the fault gone, the next "exact" job degrades onto cwsc (the
  // ladder rung whose breaker is closed) and succeeds, stamped with
  // provenance naming the solver originally asked for.
  auto degraded = scheduler.Enqueue(MakeJob(instance, "exact"));
  ASSERT_TRUE(degraded.ok());
  JobOutcome outcome = degraded->get();
  ASSERT_TRUE(outcome.result.ok()) << outcome.result.status().ToString();
  EXPECT_EQ(outcome.degraded_from, "exact");
  EXPECT_EQ(outcome.result->degraded_from, "exact");
  EXPECT_GE(scheduler.metrics().CounterValue("serve.degraded.breaker"), 1u);
  EXPECT_GE(scheduler.metrics().CounterValue("serve.degraded.jobs"), 1u);

  // The degraded run memoized a CLEAN result under cwsc's own key: asking
  // for cwsc directly now hits the cache with no degradation provenance.
  auto direct = scheduler.Enqueue(MakeJob(instance, "cwsc"));
  ASSERT_TRUE(direct.ok());
  JobOutcome cached = direct->get();
  ASSERT_TRUE(cached.result.ok());
  EXPECT_TRUE(cached.from_result_cache);
  EXPECT_TRUE(cached.result->degraded_from.empty());
}

TEST(SolveSchedulerTest, OpenBreakerWithNoLadderRejectsWithUnavailable) {
  ThreadPool pool(2);
  serve::SchedulerOptions options;
  options.resilience.breaker.enabled = true;
  options.resilience.breaker.failure_threshold = 1;
  options.resilience.breaker.open_seconds = 60.0;
  options.result_cache_entries = 0;  // no memoized copies to serve
  SolveScheduler scheduler(&pool, options);
  InstancePtr instance = ToyInstance();

  {
    ScopedFaultPlan chaos(/*seed=*/8);
    chaos.plan().Arm(FaultPoint::kSolverError, 1.0);
    auto failing = scheduler.Enqueue(MakeJob(instance, "cwsc"));
    ASSERT_TRUE(failing.ok());
    failing->get();
  }

  auto rejected = scheduler.Enqueue(MakeJob(instance, "cwsc"));
  ASSERT_TRUE(rejected.ok());  // admission is fine; the job itself bounces
  JobOutcome outcome = rejected->get();
  ASSERT_FALSE(outcome.result.ok());
  EXPECT_TRUE(outcome.result.status().IsUnavailable());
  EXPECT_NE(outcome.result.status().message().find("retry after"),
            std::string::npos);
  EXPECT_GE(scheduler.metrics().CounterValue("serve.breaker.rejected"), 1u);
}

TEST(SolveSchedulerTest, WatchdogRedispatchesLostPoolTasks) {
  ScopedFaultPlan chaos(/*seed=*/17);
  chaos.plan().Arm(FaultPoint::kPoolTaskLoss, 1.0);  // drop every dispatch

  ThreadPool pool(2);
  serve::SchedulerOptions options;
  options.resilience.watchdog = true;
  options.resilience.watchdog_interval_seconds = 0.01;
  options.resilience.watchdog_stale_seconds = 0.05;
  SolveScheduler scheduler(&pool, options);

  auto future = scheduler.Enqueue(MakeJob(ToyInstance(), "cwsc"));
  ASSERT_TRUE(future.ok());
  // The dispatch task was swallowed; heal the pool and let the watchdog's
  // stale-queue sweep submit a replacement.
  chaos.plan().Arm(FaultPoint::kPoolTaskLoss, 0.0);
  ASSERT_EQ(future->wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "lost pool task was never redispatched";
  JobOutcome outcome = future->get();
  EXPECT_TRUE(outcome.result.ok()) << outcome.result.status().ToString();
  EXPECT_GE(scheduler.metrics().CounterValue("serve.watchdog.redispatched"),
            1u);
}

TEST(SolveSchedulerTest, ChaosReplayWithTheSameSeedFiresIdentically) {
  // Two fresh scheduler runs over the same single-threaded job sequence and
  // the same plan seed must consume and fire identical fault draws.
  auto run = [](std::uint64_t seed) {
    ScopedFaultPlan chaos(seed);
    chaos.plan().Arm(FaultPoint::kSolverError, 0.4);
    chaos.plan().Arm(FaultPoint::kResultCacheCorrupt, 0.3);

    ThreadPool pool(1);  // inline execution: a deterministic draw sequence
    serve::SchedulerOptions options;
    options.resilience.retry.max_attempts = 4;
    options.resilience.retry.initial_backoff_ms = 0.1;
    options.resilience.retry.max_backoff_ms = 0.5;
    SolveScheduler scheduler(&pool, options);
    InstancePtr instance = ToyInstance();
    std::vector<std::future<JobOutcome>> futures;
    for (int i = 0; i < 6; ++i) {
      auto future = scheduler.Enqueue(
          MakeJob(instance, i % 2 == 0 ? "cwsc" : "greedy-wsc"));
      EXPECT_TRUE(future.ok());
      futures.push_back(std::move(*future));
    }
    std::vector<bool> outcomes;
    for (auto& f : futures) outcomes.push_back(f.get().result.ok());
    return std::tuple(outcomes,
                      chaos.plan().draws(FaultPoint::kSolverError),
                      chaos.plan().fires(FaultPoint::kSolverError),
                      chaos.plan().fires(FaultPoint::kResultCacheCorrupt));
  };

  const auto first = run(77);
  const auto second = run(77);
  EXPECT_EQ(first, second);
  const auto other = run(78);
  // Different seed, same draw structure: counts may coincide but the
  // decision stream is independent — just sanity-check draws happened.
  EXPECT_GT(std::get<1>(other), 0u);
}

TEST(SolveSchedulerTest, ConcurrentChaosCompletesEveryFuture) {
  ScopedFaultPlan chaos(/*seed=*/20260808);
  chaos.plan().Arm(FaultPoint::kSolverError, 0.3);
  chaos.plan().Arm(FaultPoint::kSolverThrow, 0.1);
  chaos.plan().Arm(FaultPoint::kSolverDelay, 0.2);
  chaos.plan().set_solver_delay_ms(1);
  chaos.plan().Arm(FaultPoint::kSnapshotMaterialize, 0.05);
  chaos.plan().Arm(FaultPoint::kResultCacheCorrupt, 0.2);

  ThreadPool pool(4);
  serve::SchedulerOptions options;
  options.resilience.retry.max_attempts = 4;
  options.resilience.retry.initial_backoff_ms = 0.1;
  options.resilience.retry.max_backoff_ms = 2.0;
  options.resilience.retry_budget.burst = 1000.0;
  options.resilience.retry_budget.tokens_per_second = 1000.0;
  options.resilience.breaker.enabled = true;
  options.resilience.breaker.failure_threshold = 5;
  options.resilience.breaker.open_seconds = 0.05;
  options.resilience.ladder = serve::DegradationLadder::Default();
  options.resilience.watchdog = true;
  options.resilience.watchdog_interval_seconds = 0.01;
  options.resilience.watchdog_stale_seconds = 0.25;
  SolveScheduler scheduler(&pool, options);
  InstancePtr instance = ToyInstance();

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 8;
  const char* const solvers[] = {"cwsc", "cmc", "greedy-wsc"};
  std::mutex futures_mu;
  std::vector<std::future<JobOutcome>> futures;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        SolveJob job = MakeJob(instance, solvers[(t + i) % 3]);
        job.request.label = "chaos-" + std::to_string(t);
        auto future = scheduler.Enqueue(std::move(job));
        ASSERT_TRUE(future.ok()) << future.status().ToString();
        std::lock_guard<std::mutex> lock(futures_mu);
        futures.push_back(std::move(*future));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(futures.size(),
            static_cast<std::size_t>(kThreads * kJobsPerThread));

  // The core chaos gate: every admitted future completes — no deadlock, no
  // lost promise — and failures are typed, never hung.
  int ok = 0, failed = 0;
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "a future never completed under chaos";
    JobOutcome outcome = future.get();
    if (outcome.result.ok()) {
      ++ok;
      EXPECT_TRUE(outcome.result->audit.bookkeeping_consistent);
    } else {
      ++failed;
      EXPECT_FALSE(outcome.result.status().message().empty());
    }
    EXPECT_GE(outcome.attempts, 0);
  }

  // Bookkeeping stays consistent under concurrency: accepted == resolved,
  // completed + failed == accepted (no double counts, no losses — counters
  // are unsigned, so any underflow would explode these equalities).
  obs::MetricRegistry& metrics = scheduler.metrics();
  const std::uint64_t accepted = metrics.CounterValue("serve.jobs.accepted");
  EXPECT_EQ(accepted, static_cast<std::uint64_t>(kThreads * kJobsPerThread));
  EXPECT_EQ(metrics.CounterValue("serve.jobs.completed") +
                metrics.CounterValue("serve.jobs.failed"),
            accepted);
  EXPECT_EQ(ok + failed, kThreads * kJobsPerThread);

  // Fault accounting is internally consistent.
  for (int p = 0; p < kNumFaultPoints; ++p) {
    const FaultPoint point = static_cast<FaultPoint>(p);
    EXPECT_LE(chaos.plan().fires(point), chaos.plan().draws(point));
  }
  // Injected errors were actually exercised and either retried or surfaced.
  EXPECT_GT(chaos.plan().draws(FaultPoint::kSolverError), 0u);
}

// A storm of shard-worker losses must cost latency only: every future
// completes, every result is bit-identical to a fault-free solve of the
// same request, and the scheduler's job accounting balances.
TEST(SolveSchedulerTest, ShardWorkerLossStormIsBitIdentical) {
  RandomSystemSpec spec;
  spec.num_elements = 512;
  spec.num_sets = 60;
  spec.max_set_size = 128;
  Rng rng(77);
  auto system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());
  ShardingOptions sharding;
  sharding.num_shards = 6;
  sharding.min_shard_elements = 1;
  auto built =
      api::InstanceSnapshot::FromSetSystem(std::move(*system), sharding);
  ASSERT_TRUE(built.ok());
  InstancePtr instance = *built;
  ASSERT_EQ(instance->num_shards(), 6u);

  const char* const solvers[] = {"cwsc", "cmc", "greedy-wsc"};
  struct Probe {
    const char* solver;
    std::size_t k;
    double fraction;
    std::string expected;
  };
  auto fingerprint = [](const Result<SolveResult>& result) {
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return std::string("error");
    std::string out;
    for (SetId id : result->solution.sets) out += std::to_string(id) + ",";
    return out + "|" + std::to_string(result->total_cost) + "|" +
           std::to_string(result->covered);
  };

  // Fault-free references first, before any plan is installed.
  std::vector<Probe> probes;
  for (const char* solver : solvers) {
    for (std::size_t k : {3u, 4u, 5u, 6u}) {
      for (double fraction : {0.4, 0.6}) {
        SolveJob job = MakeJob(instance, solver, k, fraction);
        Probe probe{solver, k, fraction, ""};
        probe.expected = fingerprint(
            api::SolverRegistry::Global().Solve(solver, job.request));
        probes.push_back(std::move(probe));
      }
    }
  }

  ScopedFaultPlan storm(/*seed=*/4242);
  storm.plan().Arm(FaultPoint::kShardWorkerLoss, 0.75);
  ThreadPool pool(4);
  SolveScheduler scheduler(&pool);
  std::vector<std::future<JobOutcome>> futures;
  for (const Probe& probe : probes) {
    auto future = scheduler.Enqueue(
        MakeJob(instance, probe.solver, probe.k, probe.fraction));
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    futures.push_back(std::move(*future));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "future " << i << " never completed under the storm";
    JobOutcome outcome = futures[i].get();
    ASSERT_TRUE(outcome.result.ok()) << outcome.result.status().ToString();
    EXPECT_TRUE(outcome.result->audit.bookkeeping_consistent);
    EXPECT_EQ(fingerprint(outcome.result), probes[i].expected)
        << probes[i].solver << " k=" << probes[i].k;
  }

  // The storm actually fired, and recovery never surfaced as a failure.
  EXPECT_GT(storm.plan().fires(FaultPoint::kShardWorkerLoss), 0u);
  obs::MetricRegistry& metrics = scheduler.metrics();
  EXPECT_EQ(metrics.CounterValue("serve.jobs.completed"),
            static_cast<std::uint64_t>(probes.size()));
  EXPECT_EQ(metrics.CounterValue("serve.jobs.failed"), 0u);
}

// ---------------------------------------------------------------- batch ----

TEST(ServeBatchTest, ParsesRunsAndReportsCacheHits) {
  const std::string path = ::testing::TempDir() + "/serve_batch_jobs.json";
  {
    std::ofstream out(path);
    out << R"({"jobs": [
      {"solver": "cwsc", "k": 3, "coverage": 0.5, "label": "a", "repeat": 3},
      {"solver": "cmc", "k": 3, "coverage": 0.5,
       "options": {"b": 2, "strict": false}, "priority": 1}
    ]})";
  }
  InstancePtr instance = ToyInstance();
  auto jobs = serve::ParseBatchFile(path, instance);
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  ASSERT_EQ(jobs->size(), 4u);  // 3 repeats + 1
  EXPECT_EQ((*jobs)[0].request.label, "a");
  EXPECT_EQ((*jobs)[3].priority, 1);
  EXPECT_EQ((*jobs)[3].request.options.items().at("b"), "2");

  ThreadPool pool(2);
  SolveScheduler scheduler(&pool);
  auto report = serve::RunBatch(*std::move(jobs), scheduler);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const serve::JsonValue* aggregate = report->Find("aggregate");
  ASSERT_NE(aggregate, nullptr);
  EXPECT_EQ(aggregate->Find("total_jobs")->as_number(), 4.0);
  EXPECT_EQ(aggregate->Find("failed")->as_number(), 0.0);
  // The "a" repeats dedupe through the result cache (the first run fills
  // it; concurrent racers may miss, so >= 1 hit, not == 2).
  EXPECT_GE(aggregate->Find("result_cache_hits")->as_number(), 1.0);
  ASSERT_NE(report->Find("jobs"), nullptr);
  EXPECT_EQ(report->Find("jobs")->as_array().size(), 4u);

  // All four jobs agree on the report being serializable and reparseable.
  auto reparsed = serve::ParseJson(report->Dump());
  ASSERT_TRUE(reparsed.ok());
}

TEST(ServeBatchTest, MalformedBatchFilesAreTypedErrors) {
  const std::string path = ::testing::TempDir() + "/serve_batch_bad.json";
  InstancePtr instance = ToyInstance();
  {
    std::ofstream out(path);
    out << R"({"jobs": [{"k": 3}]})";  // no solver
  }
  auto missing_solver = serve::ParseBatchFile(path, instance);
  EXPECT_TRUE(missing_solver.status().IsInvalidArgument());
  {
    std::ofstream out(path);
    out << R"({"work": []})";  // wrong top-level key
  }
  EXPECT_TRUE(serve::ParseBatchFile(path, instance)
                  .status()
                  .IsInvalidArgument());
  EXPECT_FALSE(serve::ParseBatchFile("/nonexistent.json", instance).ok());
}

TEST(ServeBatchTest, MissingBatchFileIsATypedNotFound) {
  auto missing =
      serve::ParseBatchSpec("/no/such/dir/jobs.json", ToyInstance());
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
  EXPECT_NE(missing.status().message().find("cannot open"),
            std::string::npos);
}

TEST(ServeBatchTest, FaultSpecParsesAndArmsAPlan) {
  const std::string path = ::testing::TempDir() + "/serve_batch_faults.json";
  {
    std::ofstream out(path);
    out << R"({"faults": {"seed": 42, "solver_delay_ms": 2,
                "points": {"solver_error": 0.25, "pool_task_loss": 0.5}},
               "jobs": [{"solver": "cwsc"}]})";
  }
  InstancePtr instance = ToyInstance();
  auto spec = serve::ParseBatchSpec(path, instance);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->jobs.size(), 1u);
  ASSERT_TRUE(spec->faults.configured);
  EXPECT_EQ(spec->faults.seed, 42u);
  EXPECT_EQ(spec->faults.solver_delay_ms, 2u);

  FaultPlan plan(spec->faults.seed);
  spec->faults.ApplyTo(plan);
  EXPECT_DOUBLE_EQ(plan.probability(FaultPoint::kSolverError), 0.25);
  EXPECT_DOUBLE_EQ(plan.probability(FaultPoint::kPoolTaskLoss), 0.5);
  EXPECT_DOUBLE_EQ(plan.probability(FaultPoint::kSolverThrow), 0.0);
  EXPECT_EQ(plan.solver_delay_ms(), 2u);

  // The jobs-only wrapper refuses fault scripting rather than ignoring it.
  auto jobs_only = serve::ParseBatchFile(path, instance);
  EXPECT_TRUE(jobs_only.status().IsInvalidArgument());

  // Unknown fault points and out-of-range probabilities are typed errors.
  {
    std::ofstream out(path);
    out << R"({"faults": {"points": {"bogus_point": 0.5}}, "jobs": []})";
  }
  EXPECT_TRUE(
      serve::ParseBatchSpec(path, instance).status().IsInvalidArgument());
  {
    std::ofstream out(path);
    out << R"({"faults": {"points": {"solver_error": 1.5}}, "jobs": []})";
  }
  EXPECT_TRUE(
      serve::ParseBatchSpec(path, instance).status().IsInvalidArgument());
}

TEST(ServeBatchTest, ChaosBatchReportCountsResilienceEvents) {
  const std::string path = ::testing::TempDir() + "/serve_batch_chaos.json";
  {
    std::ofstream out(path);
    out << R"({"faults": {"seed": 7, "points": {"solver_error": 1.0}},
               "jobs": [{"solver": "cwsc", "label": "doomed"}]})";
  }
  InstancePtr instance = ToyInstance();
  auto spec = serve::ParseBatchSpec(path, instance);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  ThreadPool pool(2);
  serve::SchedulerOptions options;
  options.resilience.retry.max_attempts = 2;
  options.resilience.retry.initial_backoff_ms = 0.1;
  SolveScheduler scheduler(&pool, options);

  ScopedFaultPlan chaos(spec->faults.seed);
  spec->faults.ApplyTo(chaos.plan());
  auto report = serve::RunBatch(std::move(spec->jobs), scheduler);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const serve::JsonValue* aggregate = report->Find("aggregate");
  ASSERT_NE(aggregate, nullptr);
  EXPECT_EQ(aggregate->Find("failed")->as_number(), 1.0);
  ASSERT_NE(aggregate->Find("retries_attempted"), nullptr);
  EXPECT_EQ(aggregate->Find("retries_attempted")->as_number(), 1.0);
  EXPECT_EQ(aggregate->Find("retries_exhausted")->as_number(), 1.0);

  const serve::JsonValue* jobs = report->Find("jobs");
  ASSERT_NE(jobs, nullptr);
  const serve::JsonValue& job = jobs->as_array().at(0);
  EXPECT_EQ(job.Find("attempts")->as_number(), 2.0);
  EXPECT_EQ(job.Find("ok")->as_bool(), false);
}

}  // namespace
}  // namespace scwsc
