// The serve layer: JSON round-trips, content-hash stability, cache LRU
// behavior, and the SolveScheduler's contract — deterministic result-cache
// hits, deadline trips surfacing partial payloads, typed backpressure,
// priority aging (no starvation), graceful drain — plus the batch front end
// end to end.

#include "src/serve/scheduler.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/api/instance.h"
#include "src/api/registry.h"
#include "src/common/run_context.h"
#include "src/common/thread_pool.h"
#include "src/gen/toy.h"
#include "src/serve/batch.h"
#include "src/serve/cache.h"
#include "src/serve/json.h"

namespace scwsc {
namespace {

using api::InstancePtr;
using api::SolveRequest;
using api::SolveResult;
using serve::JobOutcome;
using serve::SolveJob;
using serve::SolveScheduler;

InstancePtr ToyInstance() {
  auto instance = api::InstanceSnapshot::FromTable(
      gen::MakeEntitiesTable(),
      pattern::CostFunction(pattern::CostKind::kMax));
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return *instance;
}

SolveJob MakeJob(InstancePtr instance, const std::string& solver,
                 std::size_t k = 3, double fraction = 0.5,
                 const std::vector<std::string>& options = {}) {
  auto request = SolveRequest::Builder(std::move(instance))
                     .WithK(k)
                     .WithCoverage(fraction)
                     .WithOptions(options)
                     .Build();
  EXPECT_TRUE(request.ok()) << request.status().ToString();
  SolveJob job;
  job.solver = solver;
  job.request = *std::move(request);
  return job;
}

/// Shared state for the two test stubs: a gate the GatedSolver blocks on
/// (opened for everyone, or one release token at a time) and the execution
/// order both stubs record.
struct GateState {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int tokens = 0;  // one blocked GatedSolver proceeds per token
  std::vector<std::string> ran;  // labels, in execution order
};

GateState& Gate() {
  static GateState* state = new GateState();
  return *state;
}

void OpenGate() {
  std::lock_guard<std::mutex> lock(Gate().mu);
  Gate().open = true;
  Gate().cv.notify_all();
}

/// Lets exactly one blocked GatedSolver finish.
void ReleaseOne() {
  std::lock_guard<std::mutex> lock(Gate().mu);
  ++Gate().tokens;
  Gate().cv.notify_all();
}

void ResetGate() {
  std::lock_guard<std::mutex> lock(Gate().mu);
  Gate().open = false;
  Gate().tokens = 0;
  Gate().ran.clear();
}

/// Blocks until the gate opens (or a release token arrives), then records
/// its label. Trips cooperatively while waiting, surfacing a partial
/// payload like real solvers do.
class GatedSolver : public api::Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext* run_context) const override {
    GateState& gate = Gate();
    {
      std::unique_lock<std::mutex> lock(gate.mu);
      // Wait in slices so a deadline on the run context still trips while
      // the gate stays shut.
      while (!gate.open && gate.tokens == 0) {
        if (run_context != nullptr &&
            run_context->Check() != TripKind::kNone) {
          SolveResult partial;
          partial.labels = {"partial-" + request.label};
          partial.audit.bookkeeping_consistent = true;
          return TripStatus(run_context->tripped(), "gated solve")
              .WithPayload(std::move(partial));
        }
        gate.cv.wait_for(lock, std::chrono::milliseconds(1));
      }
      if (!gate.open && gate.tokens > 0) --gate.tokens;
      gate.ran.push_back(request.label);
    }
    SolveResult result;
    result.labels = {"ran-" + request.label};
    result.covered = request.instance->num_elements();
    result.audit.bookkeeping_consistent = true;
    return result;
  }
};

SCWSC_REGISTER_SOLVER(GatedSolver,
                      api::SolverInfo{"test-gated", "serve test stub", 0, {}});

/// Records its label and returns immediately — never blocks.
class RecorderSolver : public api::Solver {
 public:
  Result<SolveResult> Solve(const SolveRequest& request,
                            const RunContext*) const override {
    {
      std::lock_guard<std::mutex> lock(Gate().mu);
      Gate().ran.push_back(request.label);
    }
    SolveResult result;
    result.labels = {"ran-" + request.label};
    result.covered = request.instance->num_elements();
    result.audit.bookkeeping_consistent = true;
    return result;
  }
};

SCWSC_REGISTER_SOLVER(
    RecorderSolver,
    api::SolverInfo{"test-recorder", "serve test stub", 0, {}});

// ---------------------------------------------------------------- JSON ----

TEST(ServeJsonTest, RoundTripsThroughDumpAndParse) {
  serve::JsonObject object;
  object["name"] = std::string("serve");
  object["count"] = std::size_t{42};
  object["ratio"] = 0.5;
  object["on"] = true;
  serve::JsonArray array;
  array.push_back(serve::JsonValue(1.0));
  array.push_back(serve::JsonValue(std::string("two")));
  object["items"] = serve::JsonValue(std::move(array));

  const std::string dumped = serve::JsonValue(std::move(object)).Dump();
  auto parsed = serve::ParseJson(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), dumped);  // canonical form is a fixed point

  EXPECT_EQ(parsed->Find("name")->as_string(), "serve");
  EXPECT_EQ(parsed->Find("count")->as_number(), 42.0);
  EXPECT_TRUE(parsed->Find("on")->as_bool());
  EXPECT_EQ(parsed->Find("items")->as_array().size(), 2u);
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(ServeJsonTest, IntegralNumbersDumpWithoutFraction) {
  EXPECT_EQ(serve::JsonValue(3.0).Dump(), "3");
  EXPECT_EQ(serve::JsonValue(3.5).Dump(), "3.5");
}

TEST(ServeJsonTest, MalformedInputsAreTypedErrors) {
  EXPECT_FALSE(serve::ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(serve::ParseJson("[1, 2").ok());
  EXPECT_FALSE(serve::ParseJson("{} trailing").ok());
  EXPECT_FALSE(serve::ParseJson("nul").ok());
  auto status = serve::ParseJson("{\"a\": }").status();
  EXPECT_TRUE(status.IsInvalidArgument());
}

// -------------------------------------------------------------- caches ----

TEST(ServeCacheTest, ContentHashIsStableAndContentSensitive) {
  InstancePtr a = ToyInstance();
  InstancePtr b = ToyInstance();
  // Two snapshots of identical data hash identically...
  EXPECT_EQ(serve::ContentHash(*a), serve::ContentHash(*b));

  // ...while different data hashes differently.
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0, 1}, 1.0, "s0").ok());
  auto other = api::InstanceSnapshot::FromSetSystem(std::move(system));
  ASSERT_TRUE(other.ok());
  EXPECT_NE(serve::ContentHash(*a), serve::ContentHash(**other));
  EXPECT_GT(serve::ApproxSnapshotBytes(*a), 0u);
}

TEST(ServeCacheTest, SnapshotCacheEvictsLeastRecentlyUsedByBytes) {
  InstancePtr instance = ToyInstance();
  const std::size_t bytes = serve::ApproxSnapshotBytes(*instance);
  obs::MetricRegistry metrics;
  // Room for roughly one snapshot: inserting a second evicts the first.
  serve::SnapshotCache cache(bytes + bytes / 2, &metrics);
  cache.Insert(1, instance);
  cache.Insert(2, ToyInstance());
  EXPECT_EQ(cache.Lookup(1), nullptr);   // evicted
  EXPECT_NE(cache.Lookup(2), nullptr);   // the newest entry survives
  EXPECT_EQ(metrics.CounterValue("serve.snapshot_cache.evictions"), 1u);
  EXPECT_EQ(metrics.CounterValue("serve.snapshot_cache.hits"), 1u);
  EXPECT_EQ(metrics.CounterValue("serve.snapshot_cache.misses"), 1u);
}

TEST(ServeCacheTest, ResultCacheKeySeparatesOptionSpellingsByCanonicalForm) {
  InstancePtr instance = ToyInstance();
  SolveJob canonical =
      MakeJob(instance, "cmc", 3, 0.5, {"max_budget_rounds=64"});
  SolveJob alias = MakeJob(instance, "cmc", 3, 0.5, {"max-budget-rounds=64"});
  // The registry canonicalizes before the scheduler builds keys; here the
  // raw bags differ, so the keys differ — MakeResultKey is spelling-exact.
  auto key_canonical = serve::MakeResultKey(7, "cmc", canonical.request);
  auto key_alias = serve::MakeResultKey(7, "cmc", alias.request);
  EXPECT_TRUE(key_canonical < key_alias || key_alias < key_canonical);

  serve::ResultCache cache(2);
  SolveResult result;
  result.total_cost = 5.0;
  cache.Insert(key_canonical, result);
  ASSERT_TRUE(cache.Lookup(key_canonical).has_value());
  EXPECT_EQ(cache.Lookup(key_canonical)->total_cost, 5.0);
  EXPECT_FALSE(cache.Lookup(key_alias).has_value());
}

// ----------------------------------------------------------- scheduler ----

TEST(SolveSchedulerTest, DeterministicSolvesHitTheResultCache) {
  ThreadPool pool(2);
  SolveScheduler scheduler(&pool);
  InstancePtr instance = ToyInstance();

  auto first = scheduler.Enqueue(MakeJob(instance, "cwsc"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  JobOutcome cold = first->get();
  ASSERT_TRUE(cold.result.ok()) << cold.result.status().ToString();
  EXPECT_FALSE(cold.from_result_cache);

  // Same job again — and once under a different case spelling; both must be
  // served from cache with bit-identical results.
  for (const char* spelling : {"cwsc", "CWSC"}) {
    auto again = scheduler.Enqueue(MakeJob(instance, spelling));
    ASSERT_TRUE(again.ok());
    JobOutcome warm = again->get();
    ASSERT_TRUE(warm.result.ok());
    EXPECT_TRUE(warm.from_result_cache) << spelling;
    EXPECT_EQ(warm.result->labels, cold.result->labels);
    EXPECT_EQ(warm.result->total_cost, cold.result->total_cost);
  }
  EXPECT_GE(scheduler.metrics().CounterValue("serve.result_cache.hits"), 2u);

  // A different k is a different key: no false sharing.
  auto other = scheduler.Enqueue(MakeJob(instance, "cwsc", 2));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->get().from_result_cache);
}

TEST(SolveSchedulerTest, DeadlineTripSurfacesPartialPayload) {
  ResetGate();
  ThreadPool pool(2);
  SolveScheduler scheduler(&pool);
  SolveJob job = MakeJob(ToyInstance(), "test-gated");
  job.request.deadline = std::chrono::milliseconds(20);
  job.request.label = "deadline";

  auto future = scheduler.Enqueue(std::move(job));
  ASSERT_TRUE(future.ok()) << future.status().ToString();
  JobOutcome outcome = future->get();  // gate never opens; deadline trips

  ASSERT_FALSE(outcome.result.ok());
  EXPECT_TRUE(outcome.result.status().IsInterruption())
      << outcome.result.status().ToString();
  const auto* partial = outcome.result.status().payload<SolveResult>();
  ASSERT_NE(partial, nullptr);
  EXPECT_EQ(partial->labels, std::vector<std::string>{"partial-deadline"});
  EXPECT_FALSE(outcome.from_result_cache);

  // Deadline-bearing jobs must not poison the cache: a deadline-free rerun
  // actually runs (gate open) instead of replaying the partial.
  OpenGate();
  auto rerun = scheduler.Enqueue(MakeJob(ToyInstance(), "test-gated"));
  ASSERT_TRUE(rerun.ok());
  JobOutcome full = rerun->get();
  ASSERT_TRUE(full.result.ok()) << full.result.status().ToString();
  EXPECT_FALSE(full.from_result_cache);
}

TEST(SolveSchedulerTest, BackpressureRejectsWithResourceExhausted) {
  ResetGate();
  ThreadPool pool(2);
  serve::SchedulerOptions options;
  options.max_queue_depth = 1;
  SolveScheduler scheduler(&pool, options);

  SolveJob blocked = MakeJob(ToyInstance(), "test-gated");
  blocked.request.label = "holds-the-queue";
  auto admitted = scheduler.Enqueue(std::move(blocked));
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();

  // The queue is now at depth: the next job is refused, typed, non-blocking.
  auto rejected = scheduler.Enqueue(MakeJob(ToyInstance(), "cwsc"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  EXPECT_GE(scheduler.metrics().CounterValue("serve.jobs.rejected"), 1u);

  OpenGate();
  EXPECT_TRUE(admitted->get().result.ok());
  // Capacity freed: admission works again.
  auto after = scheduler.Enqueue(MakeJob(ToyInstance(), "cwsc"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->get().result.ok());
}

TEST(SolveSchedulerTest, AgedLowPriorityJobOutranksFreshHighPriority) {
  ResetGate();
  // Both workers are held at the gate while two contenders queue up; then
  // ReleaseOne frees exactly one worker, which therefore runs both
  // contenders sequentially — the pop order IS the recorded order, no race.
  ThreadPool pool(2);
  serve::SchedulerOptions options;
  options.aging_interval_seconds = 0.01;  // 10 ms of waiting = +1 level
  SolveScheduler scheduler(&pool, options);

  InstancePtr instance = ToyInstance();
  std::vector<std::future<JobOutcome>> holders;
  for (std::size_t i = 0; i < 2; ++i) {  // occupy both workers
    // Distinct k per job: result-cache keys must not collide, or the second
    // contender would be served from cache without ever "running".
    SolveJob hold = MakeJob(instance, "test-gated", /*k=*/1 + i);
    hold.request.label = "hold-" + std::to_string(i);
    auto f = scheduler.Enqueue(std::move(hold));
    ASSERT_TRUE(f.ok());
    holders.push_back(std::move(*f));
  }

  SolveJob batch_job = MakeJob(instance, "test-recorder", /*k=*/5);
  batch_job.request.label = "batch";
  batch_job.priority = 0;
  auto batch_future = scheduler.Enqueue(std::move(batch_job));
  ASSERT_TRUE(batch_future.ok());

  // Let the batch job age well past the interactive job's static edge.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  SolveJob interactive = MakeJob(instance, "test-recorder", /*k=*/6);
  interactive.request.label = "interactive";
  interactive.priority = 3;  // fresh: effective 3; batch: 0 + ~10 levels
  auto interactive_future = scheduler.Enqueue(std::move(interactive));
  ASSERT_TRUE(interactive_future.ok());

  ReleaseOne();  // one worker frees and drains both contenders in pop order
  batch_future->get();
  interactive_future->get();
  OpenGate();  // now let the remaining holder finish
  for (auto& f : holders) f.get();

  // Execution order: the aged batch job ran before the fresh interactive
  // one — a flood of high priorities cannot starve waiting work.
  std::vector<std::string> ran;
  {
    std::lock_guard<std::mutex> lock(Gate().mu);
    ran = Gate().ran;
  }
  auto pos = [&](const std::string& label) {
    for (std::size_t i = 0; i < ran.size(); ++i) {
      if (ran[i] == label) return i;
    }
    return ran.size();
  };
  ASSERT_LT(pos("batch"), ran.size());
  ASSERT_LT(pos("interactive"), ran.size());
  EXPECT_LT(pos("batch"), pos("interactive"));
}

TEST(SolveSchedulerTest, DrainStopsAdmissionAndCompletesAcceptedJobs) {
  ResetGate();
  OpenGate();  // gated jobs run through immediately
  ThreadPool pool(2);
  auto scheduler = std::make_unique<SolveScheduler>(&pool);
  InstancePtr instance = ToyInstance();

  std::vector<std::future<JobOutcome>> futures;
  for (int i = 0; i < 8; ++i) {
    auto f = scheduler->Enqueue(MakeJob(instance, "cwsc", 3, 0.5));
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  scheduler->Drain();
  EXPECT_EQ(scheduler->in_flight(), 0u);
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().result.ok());  // every accepted future completed
  }
  auto late = scheduler->Enqueue(MakeJob(instance, "cwsc"));
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsCancelled()) << late.status().ToString();
  scheduler.reset();  // destructor drains again: idempotent
}

TEST(SolveSchedulerTest, UnknownSolverFailsTheJobNotTheScheduler) {
  ThreadPool pool(2);
  SolveScheduler scheduler(&pool);
  auto future = scheduler.Enqueue(MakeJob(ToyInstance(), "no-such-solver"));
  ASSERT_TRUE(future.ok());  // admission succeeds; the job itself fails
  JobOutcome outcome = future->get();
  EXPECT_TRUE(outcome.result.status().IsNotFound());
  EXPECT_GE(scheduler.metrics().CounterValue("serve.jobs.failed"), 1u);
}

// ---------------------------------------------------------------- batch ----

TEST(ServeBatchTest, ParsesRunsAndReportsCacheHits) {
  const std::string path = ::testing::TempDir() + "/serve_batch_jobs.json";
  {
    std::ofstream out(path);
    out << R"({"jobs": [
      {"solver": "cwsc", "k": 3, "coverage": 0.5, "label": "a", "repeat": 3},
      {"solver": "cmc", "k": 3, "coverage": 0.5,
       "options": {"b": 2, "strict": false}, "priority": 1}
    ]})";
  }
  InstancePtr instance = ToyInstance();
  auto jobs = serve::ParseBatchFile(path, instance);
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  ASSERT_EQ(jobs->size(), 4u);  // 3 repeats + 1
  EXPECT_EQ((*jobs)[0].request.label, "a");
  EXPECT_EQ((*jobs)[3].priority, 1);
  EXPECT_EQ((*jobs)[3].request.options.items().at("b"), "2");

  ThreadPool pool(2);
  SolveScheduler scheduler(&pool);
  auto report = serve::RunBatch(*std::move(jobs), scheduler);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const serve::JsonValue* aggregate = report->Find("aggregate");
  ASSERT_NE(aggregate, nullptr);
  EXPECT_EQ(aggregate->Find("total_jobs")->as_number(), 4.0);
  EXPECT_EQ(aggregate->Find("failed")->as_number(), 0.0);
  // The "a" repeats dedupe through the result cache (the first run fills
  // it; concurrent racers may miss, so >= 1 hit, not == 2).
  EXPECT_GE(aggregate->Find("result_cache_hits")->as_number(), 1.0);
  ASSERT_NE(report->Find("jobs"), nullptr);
  EXPECT_EQ(report->Find("jobs")->as_array().size(), 4u);

  // All four jobs agree on the report being serializable and reparseable.
  auto reparsed = serve::ParseJson(report->Dump());
  ASSERT_TRUE(reparsed.ok());
}

TEST(ServeBatchTest, MalformedBatchFilesAreTypedErrors) {
  const std::string path = ::testing::TempDir() + "/serve_batch_bad.json";
  InstancePtr instance = ToyInstance();
  {
    std::ofstream out(path);
    out << R"({"jobs": [{"k": 3}]})";  // no solver
  }
  auto missing_solver = serve::ParseBatchFile(path, instance);
  EXPECT_TRUE(missing_solver.status().IsInvalidArgument());
  {
    std::ofstream out(path);
    out << R"({"work": []})";  // wrong top-level key
  }
  EXPECT_TRUE(serve::ParseBatchFile(path, instance)
                  .status()
                  .IsInvalidArgument());
  EXPECT_FALSE(serve::ParseBatchFile("/nonexistent.json", instance).ok());
}

}  // namespace
}  // namespace scwsc
