// Robustness smoke tests: random garbage into the parsers and random
// option combinations into every solver must produce a Status — never a
// crash, hang, or silent constraint violation. All randomness is seeded,
// so any failure is exactly reproducible.

#include <chrono>
#include <sstream>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/common/run_context.h"
#include "src/core/baselines.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/exact.h"
#include "src/core/instances.h"
#include "src/core/literal.h"
#include "src/core/solution.h"
#include "src/gen/lbl_parser.h"
#include "src/hierarchy/hcmc.h"
#include "src/hierarchy/hcwsc.h"
#include "src/hierarchy/henumerate.h"
#include "src/lp/lp_rounding.h"
#include "src/pattern/enumerate.h"
#include "src/pattern/opt_cmc.h"
#include "src/pattern/opt_cwsc.h"
#include "src/table/builder.h"
#include "src/table/csv.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

std::string RandomGarbage(Rng& rng, std::size_t max_len) {
  const std::string alphabet =
      "abcXYZ0129.,|;\t \"'?-\n\r\\\x01\x7f";
  std::string s;
  const std::size_t len = rng.NextBounded(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    s += alphabet[rng.NextBounded(alphabet.size())];
  }
  return s;
}

TEST(RobustnessTest, CsvReaderNeverCrashesOnGarbage) {
  Rng rng(0xC5F);
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(RandomGarbage(rng, 200));
    csv::ReadOptions opts;
    if (trial % 3 == 0) opts.measure_column = "m";
    if (trial % 5 == 0) opts.delimiter = ';';
    auto table = csv::Read(in, opts);
    if (table.ok()) {
      // Whatever parsed must be internally consistent.
      EXPECT_LE(table->num_attributes(), 300u);
      for (std::size_t a = 0; a < table->num_attributes(); ++a) {
        EXPECT_GE(table->domain_size(a), table->num_rows() > 0 ? 1u : 0u);
      }
    }
  }
}

TEST(RobustnessTest, LblParserNeverCrashesOnGarbage) {
  Rng rng(0x1B1);
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(RandomGarbage(rng, 200));
    gen::LblParseOptions opts;
    opts.skip_malformed_lines = trial % 2 == 0;
    auto table = gen::ParseLblConnections(in, opts);
    if (table.ok()) {
      EXPECT_EQ(table->num_attributes(), 5u);
      EXPECT_GT(table->num_rows(), 0u);
    }
  }
}

TEST(RobustnessTest, SolversHandleArbitraryOptionCombinations) {
  Rng rng(0x50F7);
  for (int trial = 0; trial < 60; ++trial) {
    RandomSystemSpec spec;
    spec.num_elements = 5 + rng.NextBounded(40);
    spec.num_sets = rng.NextBounded(40);  // possibly zero sets
    spec.max_set_size = 1 + rng.NextBounded(6);
    spec.min_cost = 0.0;  // zero-cost sets allowed
    spec.max_cost = rng.NextDouble(0.0, 50.0);
    spec.ensure_universe = trial % 4 != 0;
    spec.duplicate_cost_probability = 0.3;
    auto system = RandomSetSystem(spec, rng);
    ASSERT_TRUE(system.ok());

    const std::size_t k = rng.NextBounded(6);  // possibly zero (invalid)
    const double fraction = rng.NextDouble(-0.1, 1.1);  // possibly invalid

    CwscOptions cwsc{k, fraction};
    auto a = RunCwsc(*system, cwsc);
    auto b = RunCwscLiteral(*system, cwsc);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(a->sets, b->sets);
      EXPECT_TRUE(SatisfiesConstraints(*system, *a, std::max<std::size_t>(k, 1),
                                       std::clamp(fraction, 0.0, 1.0)));
    }

    CmcOptions cmc;
    cmc.k = k;
    cmc.coverage_fraction = fraction;
    cmc.b = rng.NextDouble(-0.5, 3.0);        // possibly invalid
    cmc.epsilon = rng.NextDouble(-0.5, 3.0);  // possibly invalid
    cmc.l = static_cast<unsigned>(rng.NextBounded(4));  // possibly zero
    auto c = RunCmc(*system, cmc);
    auto d = RunCmcLiteral(*system, cmc);
    ASSERT_EQ(c.ok(), d.ok()) << c.status().ToString() << " vs "
                              << d.status().ToString();
    if (c.ok()) {
      EXPECT_EQ(c->solution.sets, d->solution.sets);
      auto audit = AuditSolution(*system, c->solution);
      ASSERT_TRUE(audit.ok());
      EXPECT_TRUE(audit->bookkeeping_consistent);
    }
  }
}

TEST(RobustnessTest, PatternSolversHandleDegenerateTables) {
  const pattern::CostFunction cost(pattern::CostKind::kMax);

  // Single row.
  {
    TableBuilder builder({"a", "b"}, "m");
    SCWSC_ASSERT_OK(builder.AddRow({"x", "y"}, 1.0));
    Table t = std::move(builder).Build();
    auto cwsc = pattern::RunOptimizedCwsc(t, cost, {1, 1.0});
    ASSERT_TRUE(cwsc.ok());
    EXPECT_EQ(cwsc->covered, 1u);
    CmcOptions opts;
    opts.k = 1;
    opts.coverage_fraction = 1.0;
    opts.relax_coverage = false;
    auto cmc = pattern::RunOptimizedCmc(t, cost, opts);
    ASSERT_TRUE(cmc.ok());
    EXPECT_EQ(cmc->covered, 1u);
  }

  // All rows identical (single duplicate group).
  {
    TableBuilder builder({"a"}, "m");
    for (int i = 0; i < 50; ++i) SCWSC_ASSERT_OK(builder.AddRow({"x"}, 2.0));
    Table t = std::move(builder).Build();
    auto cwsc = pattern::RunOptimizedCwsc(t, cost, {3, 0.5});
    ASSERT_TRUE(cwsc.ok());
    EXPECT_EQ(cwsc->covered, 50u);  // any pattern covers everything
    EXPECT_EQ(cwsc->patterns.size(), 1u);
  }

  // Zero and negative measures with max cost.
  {
    TableBuilder builder({"a"}, "m");
    SCWSC_ASSERT_OK(builder.AddRow({"x"}, -3.0));
    SCWSC_ASSERT_OK(builder.AddRow({"y"}, 0.0));
    SCWSC_ASSERT_OK(builder.AddRow({"z"}, 5.0));
    Table t = std::move(builder).Build();
    auto cwsc = pattern::RunOptimizedCwsc(t, cost, {3, 1.0});
    ASSERT_TRUE(cwsc.ok()) << cwsc.status().ToString();
    EXPECT_EQ(cwsc->covered, 3u);
    CmcOptions opts;
    opts.k = 3;
    opts.coverage_fraction = 1.0;
    opts.relax_coverage = false;
    auto cmc = pattern::RunOptimizedCmc(t, cost, opts);
    ASSERT_TRUE(cmc.ok()) << cmc.status().ToString();
    EXPECT_EQ(cmc->covered, 3u);
  }
}

TEST(RobustnessTest, RandomTablesRoundTripThroughCsvForSolvers) {
  Rng rng(0xABCD);
  for (int trial = 0; trial < 10; ++trial) {
    TableBuilder builder({"p", "q"}, "m");
    const std::size_t rows = 5 + rng.NextBounded(40);
    for (std::size_t r = 0; r < rows; ++r) {
      SCWSC_ASSERT_OK(builder.AddRow(
          {"v" + std::to_string(rng.NextBounded(4)),
           "w" + std::to_string(rng.NextBounded(3))},
          rng.NextDouble(0.5, 20.0)));
    }
    Table t = std::move(builder).Build();
    std::ostringstream out;
    SCWSC_ASSERT_OK(csv::Write(t, out));
    std::istringstream in(out.str());
    csv::ReadOptions opts;
    opts.measure_column = "m";
    auto restored = csv::Read(in, opts);
    ASSERT_TRUE(restored.ok());
    const pattern::CostFunction cost(pattern::CostKind::kMax);
    auto a = pattern::RunOptimizedCwsc(t, cost, {3, 0.6});
    auto b = pattern::RunOptimizedCwsc(*restored, cost, {3, 0.6});
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_NEAR(a->total_cost, b->total_cost, 1e-9) << "trial " << trial;
      EXPECT_EQ(a->covered, b->covered);
    }
  }
}

// The ISSUE's trip matrix: zero deadline, one-unit work budgets, and
// fault-injected cancellation at several depths. Every configuration is
// deterministic, so a failing (solver, config) pair reproduces exactly.
constexpr int kTripConfigs = 6;

void ConfigureTrip(RunContext& ctx, int config) {
  switch (config) {
    case 0: ctx.SetDeadline(std::chrono::milliseconds(0)); break;
    case 1: ctx.SetRecountBudget(1); break;
    case 2: ctx.SetNodeBudget(1); break;
    case 3: ctx.FailAfter(0); break;      // cancel before the first check
    case 4: ctx.FailAfter(7); break;      // cancel mid-run
    default: ctx.FailAfter(40); break;    // cancel deep into the run
  }
}

// An interrupted element-based solver must surrender a partial whose own
// bookkeeping audits exact against the system.
void ExpectAuditedPartial(const SetSystem& system, const Status& status,
                          const Solution& partial) {
  EXPECT_TRUE(status.IsInterruption()) << status.ToString();
  EXPECT_TRUE(partial.provenance.interrupted());
  EXPECT_EQ(partial.provenance.sets_chosen, partial.sets.size());
  EXPECT_EQ(partial.provenance.coverage_reached, partial.covered);
  auto audit = AuditSolution(system, partial);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_TRUE(audit->bookkeeping_consistent);
}

// Runs `solve` under every trip configuration. A run is allowed to finish
// before its trip fires (node budgets don't bite every solver), but any
// failure must be an interruption carrying an auditable payload, and the
// whole matrix must produce at least `min_trips` actual trips.
template <typename Solve>
void FuzzElementSolver(const SetSystem& system, int min_trips, Solve solve) {
  int trips = 0;
  for (int config = 0; config < kTripConfigs; ++config) {
    RunContext ctx;
    ConfigureTrip(ctx, config);
    const Status status = solve(ctx);
    if (status.ok()) continue;
    ASSERT_TRUE(status.IsInterruption())
        << "config " << config << ": " << status.ToString();
    ++trips;
    const Solution* partial = status.payload<Solution>();
    ASSERT_NE(partial, nullptr) << "config " << config;
    ExpectAuditedPartial(system, status, *partial);
  }
  EXPECT_GE(trips, min_trips);
}

TEST(RobustnessTest, ElementSolversSurrenderAuditablePartialsOnTrips) {
  Rng rng(0x7819);
  RandomSystemSpec spec;
  spec.num_elements = 300;
  spec.num_sets = 200;
  spec.max_set_size = 5;
  spec.ensure_universe = false;  // many picks needed, so trips land mid-run
  auto system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());

  // The untripped instance must be solvable, so any failure below is a trip.
  CwscOptions clean{spec.num_sets, 0.5};
  SCWSC_ASSERT_OK(RunCwsc(*system, clean).status());

  FuzzElementSolver(*system, 3, [&](RunContext& ctx) {
    CwscOptions opts{spec.num_sets, 0.5};
    opts.run_context = &ctx;
    return RunCwsc(*system, opts).status();
  });
  FuzzElementSolver(*system, 3, [&](RunContext& ctx) {
    CwscOptions opts{spec.num_sets, 0.5};
    opts.run_context = &ctx;
    return RunCwscLiteral(*system, opts).status();
  });
  FuzzElementSolver(*system, 3, [&](RunContext& ctx) {
    GreedyWscOptions opts;
    opts.coverage_fraction = 0.5;
    opts.run_context = &ctx;
    return RunGreedyWeightedSetCover(*system, opts).status();
  });
  FuzzElementSolver(*system, 3, [&](RunContext& ctx) {
    GreedyMaxCoverageOptions opts;
    opts.k = 50;
    opts.run_context = &ctx;
    return RunGreedyMaxCoverage(*system, opts).status();
  });
  FuzzElementSolver(*system, 3, [&](RunContext& ctx) {
    BudgetedMaxCoverageOptions opts;
    opts.budget = 1000.0;  // enough for many picks, so late cancels land
    opts.run_context = &ctx;
    return RunBudgetedMaxCoverage(*system, opts).status();
  });
}

TEST(RobustnessTest, CmcSurrendersAuditablePartialsOnTrips) {
  Rng rng(0xC3C);
  RandomSystemSpec spec;
  spec.num_elements = 200;
  spec.num_sets = 150;
  spec.max_set_size = 5;
  spec.ensure_universe = true;  // CMC's budget schedule always terminates
  auto system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());

  for (bool literal : {false, true}) {
    int trips = 0;
    for (int config = 0; config < kTripConfigs; ++config) {
      RunContext ctx;
      ConfigureTrip(ctx, config);
      CmcOptions opts;
      opts.k = 10;
      opts.coverage_fraction = 0.8;
      opts.run_context = &ctx;
      const Status status = literal ? RunCmcLiteral(*system, opts).status()
                                    : RunCmc(*system, opts).status();
      if (status.ok()) continue;
      ASSERT_TRUE(status.IsInterruption())
          << "config " << config << ": " << status.ToString();
      ++trips;
      const CmcResult* partial = status.payload<CmcResult>();
      ASSERT_NE(partial, nullptr) << "config " << config;
      ExpectAuditedPartial(*system, status, partial->solution);
      // The trip records the budget level B being explored when it fired.
      EXPECT_GT(partial->solution.provenance.budget_level, 0.0);
    }
    EXPECT_GE(trips, 3) << (literal ? "literal" : "engine");
  }
}

TEST(RobustnessTest, ExactSolverSurrendersIncumbentOnTrips) {
  Rng rng(0xE8AC7);
  RandomSystemSpec spec;
  spec.num_elements = 60;
  spec.num_sets = 24;
  spec.max_set_size = 12;
  spec.ensure_universe = false;
  auto system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());

  int trips = 0;
  for (int config = 0; config < kTripConfigs; ++config) {
    RunContext ctx;
    ConfigureTrip(ctx, config);
    ExactOptions opts;
    opts.k = 6;
    opts.coverage_fraction = 0.5;
    opts.run_context = &ctx;
    const Status status = SolveExact(*system, opts).status();
    if (status.ok()) continue;
    ASSERT_TRUE(status.IsInterruption())
        << "config " << config << ": " << status.ToString();
    ++trips;
    const ExactResult* partial = status.payload<ExactResult>();
    ASSERT_NE(partial, nullptr) << "config " << config;
    // The incumbent may be empty (trip before any feasible leaf), but its
    // bookkeeping must still audit exact.
    ExpectAuditedPartial(*system, status, partial->solution);
  }
  EXPECT_GE(trips, 3);
}

TEST(RobustnessTest, LpRoundingStaysAuditableUnderTrips) {
  Rng rng(0x19A2);
  RandomSystemSpec spec;
  spec.num_elements = 40;
  spec.num_sets = 20;
  spec.max_set_size = 8;
  spec.ensure_universe = true;
  auto system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());

  for (int config = 0; config < kTripConfigs; ++config) {
    RunContext ctx;
    ConfigureTrip(ctx, config);
    lp::LpScwscOptions opts;
    opts.k = 5;
    opts.coverage_fraction = 0.6;
    opts.trials = 8;
    opts.run_context = &ctx;
    const Status status = lp::SolveByLpRounding(*system, opts).status();
    if (status.ok()) continue;
    ASSERT_TRUE(status.IsInterruption())
        << "config " << config << ": " << status.ToString();
    // A trip inside the simplex (before the relaxation solved) carries no
    // payload; once rounding started, the payload must audit exact.
    const lp::LpRoundingResult* partial =
        status.payload<lp::LpRoundingResult>();
    if (partial != nullptr) {
      ExpectAuditedPartial(*system, status, partial->solution);
    }
  }
}

// Shared structural checks for table-based (pattern / hierarchy) partials:
// the payload's provenance must describe the payload itself and its
// bookkeeping must stay within the table.
template <typename TableSolution>
void ExpectTablePartial(const Table& table, const Status& status,
                        const TableSolution& partial) {
  EXPECT_TRUE(status.IsInterruption()) << status.ToString();
  EXPECT_TRUE(partial.provenance.interrupted());
  EXPECT_EQ(partial.provenance.sets_chosen, partial.patterns.size());
  EXPECT_EQ(partial.provenance.coverage_reached, partial.covered);
  EXPECT_LE(partial.covered, table.num_rows());
  EXPECT_GE(partial.total_cost, 0.0);
  if (partial.patterns.empty()) {
    EXPECT_EQ(partial.total_cost, 0.0);
  }
}

TEST(RobustnessTest, PatternAndHierarchySolversSurrenderPartialsOnTrips) {
  Rng rng(0xAB1E);
  TableBuilder builder({"a", "b", "c"}, "m");
  for (int r = 0; r < 150; ++r) {
    SCWSC_ASSERT_OK(builder.AddRow({"a" + std::to_string(rng.NextBounded(6)),
                                    "b" + std::to_string(rng.NextBounded(5)),
                                    "c" + std::to_string(rng.NextBounded(4))},
                                   rng.NextDouble(0.1, 5.0)));
  }
  const Table table = std::move(builder).Build();
  const hierarchy::TableHierarchy flat = hierarchy::TableHierarchy::Flat(table);
  const pattern::CostFunction cost(pattern::CostKind::kMax);

  int trips = 0;
  for (int config = 0; config < kTripConfigs; ++config) {
    CwscOptions cwsc{8, 0.9};
    CmcOptions cmc;
    cmc.k = 8;
    cmc.coverage_fraction = 0.9;

    {
      RunContext ctx;
      ConfigureTrip(ctx, config);
      cwsc.run_context = &ctx;
      const Status status = pattern::RunOptimizedCwsc(table, cost, cwsc).status();
      if (!status.ok()) {
        ASSERT_TRUE(status.IsInterruption()) << status.ToString();
        ++trips;
        const pattern::PatternSolution* partial =
            status.payload<pattern::PatternSolution>();
        ASSERT_NE(partial, nullptr) << "config " << config;
        ExpectTablePartial(table, status, *partial);
      }
    }
    {
      RunContext ctx;
      ConfigureTrip(ctx, config);
      cmc.run_context = &ctx;
      const Status status = pattern::RunOptimizedCmc(table, cost, cmc).status();
      if (!status.ok()) {
        ASSERT_TRUE(status.IsInterruption()) << status.ToString();
        ++trips;
        const pattern::PatternSolution* partial =
            status.payload<pattern::PatternSolution>();
        ASSERT_NE(partial, nullptr) << "config " << config;
        ExpectTablePartial(table, status, *partial);
      }
    }
    {
      RunContext ctx;
      ConfigureTrip(ctx, config);
      cwsc.run_context = &ctx;
      const Status status =
          hierarchy::RunHierarchicalCwsc(table, flat, cost, cwsc).status();
      if (!status.ok()) {
        ASSERT_TRUE(status.IsInterruption()) << status.ToString();
        ++trips;
        const hierarchy::HSolution* partial =
            status.payload<hierarchy::HSolution>();
        ASSERT_NE(partial, nullptr) << "config " << config;
        ExpectTablePartial(table, status, *partial);
      }
    }
    {
      RunContext ctx;
      ConfigureTrip(ctx, config);
      cmc.run_context = &ctx;
      const Status status =
          hierarchy::RunHierarchicalCmc(table, flat, cost, cmc).status();
      if (!status.ok()) {
        ASSERT_TRUE(status.IsInterruption()) << status.ToString();
        ++trips;
        const hierarchy::HSolution* partial =
            status.payload<hierarchy::HSolution>();
        ASSERT_NE(partial, nullptr) << "config " << config;
        ExpectTablePartial(table, status, *partial);
      }
    }
  }
  EXPECT_GE(trips, 8);  // the matrix must actually exercise the trip paths
}

TEST(RobustnessTest, EnumerationsReturnBareInterruptions) {
  Rng rng(0xE9B);
  TableBuilder builder({"x", "y"}, "m");
  for (int r = 0; r < 60; ++r) {
    SCWSC_ASSERT_OK(builder.AddRow({"x" + std::to_string(rng.NextBounded(5)),
                                    "y" + std::to_string(rng.NextBounded(5))},
                                   1.0));
  }
  const Table table = std::move(builder).Build();
  const hierarchy::TableHierarchy flat = hierarchy::TableHierarchy::Flat(table);

  for (int config : {0, 2, 3}) {  // deadline, node budget, instant cancel
    RunContext ctx;
    ConfigureTrip(ctx, config);
    pattern::EnumerateOptions opts;
    opts.run_context = &ctx;
    const Status status = pattern::EnumerateAllPatterns(table, opts).status();
    ASSERT_FALSE(status.ok()) << "config " << config;
    EXPECT_TRUE(status.IsInterruption()) << status.ToString();

    RunContext hctx;
    ConfigureTrip(hctx, config);
    hierarchy::HEnumerateOptions hopts;
    hopts.run_context = &hctx;
    const Status hstatus =
        hierarchy::EnumerateAllHPatterns(table, flat, hopts).status();
    ASSERT_FALSE(hstatus.ok()) << "config " << config;
    EXPECT_TRUE(hstatus.IsInterruption()) << hstatus.ToString();
  }
}

TEST(RobustnessTest, CancelRequestedConcurrentlyStopsTheRun) {
  Rng rng(0xCA9CE1);
  RandomSystemSpec spec;
  spec.num_elements = 20'000;
  spec.num_sets = 10'000;
  spec.max_set_size = 6;
  spec.ensure_universe = false;
  auto system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());

  RunContext ctx;
  std::thread canceller([&] { ctx.RequestCancel(); });
  CwscOptions opts{spec.num_sets, 0.5};
  opts.run_context = &ctx;
  auto result = RunCwsc(*system, opts);
  canceller.join();
  // Depending on scheduling the run may finish first; a cancelled run must
  // surrender an auditable partial.
  if (!result.ok()) {
    ASSERT_TRUE(result.status().IsCancelled()) << result.status().ToString();
    const Solution* partial = result.status().payload<Solution>();
    ASSERT_NE(partial, nullptr);
    ExpectAuditedPartial(*system, result.status(), *partial);
  }
}

}  // namespace
}  // namespace scwsc
