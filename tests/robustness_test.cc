// Robustness smoke tests: random garbage into the parsers and random
// option combinations into every solver must produce a Status — never a
// crash, hang, or silent constraint violation. All randomness is seeded,
// so any failure is exactly reproducible.

#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/instances.h"
#include "src/core/literal.h"
#include "src/core/solution.h"
#include "src/gen/lbl_parser.h"
#include "src/pattern/opt_cmc.h"
#include "src/pattern/opt_cwsc.h"
#include "src/table/builder.h"
#include "src/table/csv.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

std::string RandomGarbage(Rng& rng, std::size_t max_len) {
  const std::string alphabet =
      "abcXYZ0129.,|;\t \"'?-\n\r\\\x01\x7f";
  std::string s;
  const std::size_t len = rng.NextBounded(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    s += alphabet[rng.NextBounded(alphabet.size())];
  }
  return s;
}

TEST(RobustnessTest, CsvReaderNeverCrashesOnGarbage) {
  Rng rng(0xC5F);
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(RandomGarbage(rng, 200));
    csv::ReadOptions opts;
    if (trial % 3 == 0) opts.measure_column = "m";
    if (trial % 5 == 0) opts.delimiter = ';';
    auto table = csv::Read(in, opts);
    if (table.ok()) {
      // Whatever parsed must be internally consistent.
      EXPECT_LE(table->num_attributes(), 300u);
      for (std::size_t a = 0; a < table->num_attributes(); ++a) {
        EXPECT_GE(table->domain_size(a), table->num_rows() > 0 ? 1u : 0u);
      }
    }
  }
}

TEST(RobustnessTest, LblParserNeverCrashesOnGarbage) {
  Rng rng(0x1B1);
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(RandomGarbage(rng, 200));
    gen::LblParseOptions opts;
    opts.skip_malformed_lines = trial % 2 == 0;
    auto table = gen::ParseLblConnections(in, opts);
    if (table.ok()) {
      EXPECT_EQ(table->num_attributes(), 5u);
      EXPECT_GT(table->num_rows(), 0u);
    }
  }
}

TEST(RobustnessTest, SolversHandleArbitraryOptionCombinations) {
  Rng rng(0x50F7);
  for (int trial = 0; trial < 60; ++trial) {
    RandomSystemSpec spec;
    spec.num_elements = 5 + rng.NextBounded(40);
    spec.num_sets = rng.NextBounded(40);  // possibly zero sets
    spec.max_set_size = 1 + rng.NextBounded(6);
    spec.min_cost = 0.0;  // zero-cost sets allowed
    spec.max_cost = rng.NextDouble(0.0, 50.0);
    spec.ensure_universe = trial % 4 != 0;
    spec.duplicate_cost_probability = 0.3;
    auto system = RandomSetSystem(spec, rng);
    ASSERT_TRUE(system.ok());

    const std::size_t k = rng.NextBounded(6);  // possibly zero (invalid)
    const double fraction = rng.NextDouble(-0.1, 1.1);  // possibly invalid

    CwscOptions cwsc{k, fraction};
    auto a = RunCwsc(*system, cwsc);
    auto b = RunCwscLiteral(*system, cwsc);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(a->sets, b->sets);
      EXPECT_TRUE(SatisfiesConstraints(*system, *a, std::max<std::size_t>(k, 1),
                                       std::clamp(fraction, 0.0, 1.0)));
    }

    CmcOptions cmc;
    cmc.k = k;
    cmc.coverage_fraction = fraction;
    cmc.b = rng.NextDouble(-0.5, 3.0);        // possibly invalid
    cmc.epsilon = rng.NextDouble(-0.5, 3.0);  // possibly invalid
    cmc.l = static_cast<unsigned>(rng.NextBounded(4));  // possibly zero
    auto c = RunCmc(*system, cmc);
    auto d = RunCmcLiteral(*system, cmc);
    ASSERT_EQ(c.ok(), d.ok()) << c.status().ToString() << " vs "
                              << d.status().ToString();
    if (c.ok()) {
      EXPECT_EQ(c->solution.sets, d->solution.sets);
      auto audit = AuditSolution(*system, c->solution);
      ASSERT_TRUE(audit.ok());
      EXPECT_TRUE(audit->bookkeeping_consistent);
    }
  }
}

TEST(RobustnessTest, PatternSolversHandleDegenerateTables) {
  const pattern::CostFunction cost(pattern::CostKind::kMax);

  // Single row.
  {
    TableBuilder builder({"a", "b"}, "m");
    SCWSC_ASSERT_OK(builder.AddRow({"x", "y"}, 1.0));
    Table t = std::move(builder).Build();
    auto cwsc = pattern::RunOptimizedCwsc(t, cost, {1, 1.0});
    ASSERT_TRUE(cwsc.ok());
    EXPECT_EQ(cwsc->covered, 1u);
    CmcOptions opts;
    opts.k = 1;
    opts.coverage_fraction = 1.0;
    opts.relax_coverage = false;
    auto cmc = pattern::RunOptimizedCmc(t, cost, opts);
    ASSERT_TRUE(cmc.ok());
    EXPECT_EQ(cmc->covered, 1u);
  }

  // All rows identical (single duplicate group).
  {
    TableBuilder builder({"a"}, "m");
    for (int i = 0; i < 50; ++i) SCWSC_ASSERT_OK(builder.AddRow({"x"}, 2.0));
    Table t = std::move(builder).Build();
    auto cwsc = pattern::RunOptimizedCwsc(t, cost, {3, 0.5});
    ASSERT_TRUE(cwsc.ok());
    EXPECT_EQ(cwsc->covered, 50u);  // any pattern covers everything
    EXPECT_EQ(cwsc->patterns.size(), 1u);
  }

  // Zero and negative measures with max cost.
  {
    TableBuilder builder({"a"}, "m");
    SCWSC_ASSERT_OK(builder.AddRow({"x"}, -3.0));
    SCWSC_ASSERT_OK(builder.AddRow({"y"}, 0.0));
    SCWSC_ASSERT_OK(builder.AddRow({"z"}, 5.0));
    Table t = std::move(builder).Build();
    auto cwsc = pattern::RunOptimizedCwsc(t, cost, {3, 1.0});
    ASSERT_TRUE(cwsc.ok()) << cwsc.status().ToString();
    EXPECT_EQ(cwsc->covered, 3u);
    CmcOptions opts;
    opts.k = 3;
    opts.coverage_fraction = 1.0;
    opts.relax_coverage = false;
    auto cmc = pattern::RunOptimizedCmc(t, cost, opts);
    ASSERT_TRUE(cmc.ok()) << cmc.status().ToString();
    EXPECT_EQ(cmc->covered, 3u);
  }
}

TEST(RobustnessTest, RandomTablesRoundTripThroughCsvForSolvers) {
  Rng rng(0xABCD);
  for (int trial = 0; trial < 10; ++trial) {
    TableBuilder builder({"p", "q"}, "m");
    const std::size_t rows = 5 + rng.NextBounded(40);
    for (std::size_t r = 0; r < rows; ++r) {
      SCWSC_ASSERT_OK(builder.AddRow(
          {"v" + std::to_string(rng.NextBounded(4)),
           "w" + std::to_string(rng.NextBounded(3))},
          rng.NextDouble(0.5, 20.0)));
    }
    Table t = std::move(builder).Build();
    std::ostringstream out;
    SCWSC_ASSERT_OK(csv::Write(t, out));
    std::istringstream in(out.str());
    csv::ReadOptions opts;
    opts.measure_column = "m";
    auto restored = csv::Read(in, opts);
    ASSERT_TRUE(restored.ok());
    const pattern::CostFunction cost(pattern::CostKind::kMax);
    auto a = pattern::RunOptimizedCwsc(t, cost, {3, 0.6});
    auto b = pattern::RunOptimizedCwsc(*restored, cost, {3, 0.6});
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_NEAR(a->total_cost, b->total_cost, 1e-9) << "trial " << trial;
      EXPECT_EQ(a->covered, b->covered);
    }
  }
}

}  // namespace
}  // namespace scwsc
