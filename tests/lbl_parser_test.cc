#include "src/gen/lbl_parser.h"

#include <sstream>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using gen::LblParseOptions;
using gen::LblParseStats;
using gen::ParseLblConnections;

constexpr const char* kSample =
    "839414461.52 0.94 telnet 125 208 1 2 SF -\n"
    "839414462.11 ? ftp 1000 2000 3 4 REJ -\n"
    "839414463.87 12.5 nntp 99 10 1 5 SF N\n"
    "\n"
    "839414464.01 3.25 smtp 10 20 2 2 S0 -\n";

TEST(LblParserTest, ParsesWellFormedRecords) {
  std::istringstream in(kSample);
  LblParseStats stats;
  auto table = ParseLblConnections(in, {}, &stats);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(stats.parsed_rows, 3u);
  EXPECT_EQ(stats.skipped_unknown, 1u);  // the "?" duration row
  EXPECT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->num_attributes(), 5u);
  EXPECT_EQ(table->schema().measure_name(), "session_length");
  EXPECT_EQ(table->value_name(0, 0), "telnet");
  EXPECT_EQ(table->value_name(0, 1), "1");
  EXPECT_EQ(table->value_name(0, 2), "2");
  EXPECT_EQ(table->value_name(0, 3), "SF");
  EXPECT_EQ(table->value_name(0, 4), "-");
  EXPECT_DOUBLE_EQ(table->measure(0), 0.94);
  EXPECT_DOUBLE_EQ(table->measure(1), 12.5);
  EXPECT_EQ(table->value_name(2, 0), "smtp");
}

TEST(LblParserTest, KeepsUnknownDurationsWhenAsked) {
  std::istringstream in(kSample);
  LblParseOptions opts;
  opts.skip_unknown_durations = false;
  opts.unknown_duration_value = -1.0;
  auto table = ParseLblConnections(in, opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 4u);
  EXPECT_DOUBLE_EQ(table->measure(1), -1.0);
}

TEST(LblParserTest, EightFieldVariantGetsPlaceholderFlags) {
  std::istringstream in("1.0 2.0 http 1 2 a b SF\n");
  auto table = ParseLblConnections(in);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->value_name(0, 4), "-");
}

TEST(LblParserTest, MaxRowsTruncates) {
  std::istringstream in(kSample);
  LblParseOptions opts;
  opts.max_rows = 2;
  auto table = ParseLblConnections(in, opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(LblParserTest, MalformedLineFailsWithLineNumber) {
  std::istringstream in("only three fields\n");
  auto table = ParseLblConnections(in);
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsParseError());
  EXPECT_NE(table.status().message().find("line 1"), std::string::npos);
}

TEST(LblParserTest, MalformedLinesSkippableOnRequest) {
  std::istringstream in(
      "garbage\n1.0 2.0 http 1 2 a b SF -\nmore garbage here too bad\n");
  LblParseOptions opts;
  opts.skip_malformed_lines = true;
  LblParseStats stats;
  auto table = ParseLblConnections(in, opts, &stats);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(stats.skipped_malformed, 2u);
}

TEST(LblParserTest, BadDurationIsAParseError) {
  std::istringstream in("1.0 not-a-number http 1 2 a b SF -\n");
  EXPECT_TRUE(ParseLblConnections(in).status().IsParseError());
}

TEST(LblParserTest, EmptyInputFails) {
  std::istringstream in("");
  EXPECT_TRUE(ParseLblConnections(in).status().IsParseError());
}

TEST(LblParserTest, MissingFileIsNotFound) {
  EXPECT_TRUE(gen::ParseLblConnectionsFile("/no/such/file")
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace scwsc
