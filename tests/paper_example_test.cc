// End-to-end verification of every concrete number the paper derives from
// its running example (Tables I and II, the §I motivation, and the worked
// CWSC / CMC walk-throughs of §V).

#include <map>

#include "gtest/gtest.h"
#include "src/core/baselines.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/exact.h"
#include "src/gen/toy.h"
#include "src/pattern/opt_cmc.h"
#include "src/pattern/opt_cwsc.h"
#include "src/pattern/pattern_system.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using pattern::CostFunction;
using pattern::CostKind;
using pattern::PatternSystem;
using test::MakePattern;

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest()
      : table_(gen::MakeEntitiesTable()),
        cost_fn_(CostKind::kMax),
        system_(std::move(
            PatternSystem::Build(table_, cost_fn_).value())) {}

  /// Finds the SetId of the pattern given as {"Type", "Location"} strings
  /// ("*" = ALL).
  SetId IdOf(const std::vector<std::string>& values) const {
    const pattern::Pattern p = MakePattern(table_, values);
    for (SetId id = 0; id < system_.num_patterns(); ++id) {
      if (system_.pattern(id) == p) return id;
    }
    ADD_FAILURE() << "pattern not enumerated";
    return kInvalidSet;
  }

  Table table_;
  CostFunction cost_fn_;
  PatternSystem system_;
};

TEST_F(PaperExampleTest, TableOneHasSixteenEntities) {
  EXPECT_EQ(table_.num_rows(), 16u);
  EXPECT_EQ(table_.num_attributes(), 2u);
  EXPECT_EQ(table_.domain_size(0), 2u);  // Type: A, B
  EXPECT_EQ(table_.domain_size(1), 7u);  // Location: 7 distinct values
}

TEST_F(PaperExampleTest, TableTwoEnumeratesExactly24Patterns) {
  EXPECT_EQ(system_.num_patterns(), 24u);
}

TEST_F(PaperExampleTest, TableTwoCostsAndBenefitsMatchThePaper) {
  // Every row of Table II: pattern -> (cost, benefit).
  struct Expected {
    std::vector<std::string> pattern;
    double cost;
    std::size_t benefit;
  };
  const std::vector<Expected> kTableTwo = {
      {{"A", "West"}, 10, 1},      {{"A", "Northeast"}, 32, 1},
      {{"A", "North"}, 4, 2},      {{"A", "Northwest"}, 20, 1},
      {{"A", "Southwest"}, 4, 1},  {{"A", "East"}, 3, 1},
      {{"A", "South"}, 96, 1},     {{"B", "South"}, 2, 2},
      {{"B", "East"}, 7, 1},       {{"B", "West"}, 4, 1},
      {{"B", "Southwest"}, 24, 1}, {{"B", "Northwest"}, 4, 1},
      {{"B", "Northeast"}, 3, 1},  {{"B", "North"}, 20, 1},
      {{"A", "*"}, 96, 8},         {{"B", "*"}, 24, 8},
      {{"*", "North"}, 20, 3},     {{"*", "South"}, 96, 3},
      {{"*", "East"}, 7, 2},       {{"*", "West"}, 10, 2},
      {{"*", "Northeast"}, 32, 2}, {{"*", "Southwest"}, 24, 2},
      {{"*", "Northwest"}, 20, 2}, {{"*", "*"}, 96, 16},
  };
  ASSERT_EQ(kTableTwo.size(), 24u);
  for (const auto& row : kTableTwo) {
    const SetId id = IdOf(row.pattern);
    ASSERT_NE(id, kInvalidSet);
    const WeightedSet& s = system_.set_system().set(id);
    EXPECT_DOUBLE_EQ(s.cost, row.cost)
        << system_.pattern(id).ToString(table_);
    EXPECT_EQ(s.elements.size(), row.benefit)
        << system_.pattern(id).ToString(table_);
  }
}

// §I: partial weighted set cover at fraction 9/16 returns the 7 patterns
// {P3, P5, P6, P8, P10, P12, P13} with total cost 24.
TEST_F(PaperExampleTest, IntroGreedyWeightedSetCoverUsesSevenPatternsCost24) {
  GreedyWscOptions opts;
  opts.coverage_fraction = 9.0 / 16.0;
  auto solution = RunGreedyWeightedSetCover(system_.set_system(), opts);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->sets.size(), 7u);
  EXPECT_DOUBLE_EQ(solution->total_cost, 24.0);
  EXPECT_EQ(solution->covered, 9u);
}

// §I: with k = 2 and fraction 9/16 the optimal solution is {P6, P16} =
// {(A,East), (B,ALL)} with total cost 27.
TEST_F(PaperExampleTest, IntroOptimalKTwoIsP6P16Cost27) {
  ExactOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  auto exact = SolveExact(system_.set_system(), opts);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_DOUBLE_EQ(exact->solution.total_cost, 27.0);
  EXPECT_EQ(exact->solution.sets.size(), 2u);
  std::vector<SetId> expected = {IdOf({"A", "East"}), IdOf({"B", "*"})};
  std::vector<SetId> got = exact->solution.sets;
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

// §I: the cheapest 2 sets ignoring coverage cover only 3/16 elements at
// cost 5 ({P6, P8}).
TEST_F(PaperExampleTest, IntroCheapestTwoSetsCoverOnlyThreeSixteenths) {
  ExactOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 3.0 / 16.0;
  auto exact = SolveExact(system_.set_system(), opts);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_DOUBLE_EQ(exact->solution.total_cost, 5.0);
}

// §V-B worked example: CWSC picks P16 = (B,ALL) first (gain 8/24), then
// P3 = (A,North) (gain 2/4), covering 10 records at total cost 28.
TEST_F(PaperExampleTest, CwscWalkthroughPicksP16ThenP3) {
  CwscOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  auto solution = RunCwsc(system_.set_system(), opts);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  ASSERT_EQ(solution->sets.size(), 2u);
  EXPECT_EQ(solution->sets[0], IdOf({"B", "*"}));
  EXPECT_EQ(solution->sets[1], IdOf({"A", "North"}));
  EXPECT_DOUBLE_EQ(solution->total_cost, 28.0);
  EXPECT_EQ(solution->covered, 10u);
}

// The optimized CWSC (Fig. 3) must make the same choices on the example.
TEST_F(PaperExampleTest, OptimizedCwscMatchesWalkthrough) {
  CwscOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  pattern::PatternStats stats;
  auto solution = pattern::RunOptimizedCwsc(table_, cost_fn_, opts, &stats);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  ASSERT_EQ(solution->patterns.size(), 2u);
  EXPECT_EQ(solution->patterns[0], MakePattern(table_, {"B", "*"}));
  EXPECT_EQ(solution->patterns[1], MakePattern(table_, {"A", "North"}));
  EXPECT_DOUBLE_EQ(solution->total_cost, 28.0);
  EXPECT_EQ(solution->covered, 10u);
  // On this 16-row toy the lattice descent reaches essentially the whole
  // pattern space (the paper's own walk-through admits nearly every
  // pattern in its second iteration); the savings only materialize at
  // scale, which equivalence_property_test and the Fig. 6 bench cover.
  EXPECT_LE(stats.patterns_considered, 24u);
}

// §V-A worked example: with k = 2, target 9/16 (the example folds the
// (1-1/e) factor into the fraction) and b = 1, CMC fails at B = 5 and
// B = 10 and succeeds at B = 20 with four sets.
TEST_F(PaperExampleTest, CmcWalkthroughSucceedsInThirdRoundAtBudget20) {
  CmcOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  opts.relax_coverage = false;  // the example's target is 9 records exactly
  opts.b = 1.0;
  auto result = RunCmc(system_.set_system(), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->budget_rounds, 3u);
  EXPECT_DOUBLE_EQ(result->final_budget, 20.0);
  EXPECT_GE(result->solution.covered, 9u);
  EXPECT_EQ(result->solution.sets.size(), 4u);
  // At most 5k - 2 sets (Theorem 4).
  EXPECT_LE(result->solution.sets.size(), 5 * opts.k - 2);
}

// The optimized CMC (Fig. 4) reaches the same coverage within the same
// set-count bound on the example.
TEST_F(PaperExampleTest, OptimizedCmcMeetsSameGuaranteesOnExample) {
  CmcOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  opts.relax_coverage = false;
  opts.b = 1.0;
  pattern::PatternStats stats;
  auto solution = pattern::RunOptimizedCmc(table_, cost_fn_, opts, &stats);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_GE(solution->covered, 9u);
  EXPECT_LE(solution->patterns.size(), 5 * opts.k - 2);
  EXPECT_GE(stats.budget_rounds, 1u);
}

// §I: greedy max coverage ignores cost and grabs the all-ALL pattern
// (cost 96), far above CWSC's 28.
TEST_F(PaperExampleTest, MaxCoverageBaselinePaysTheAllPatternCost) {
  GreedyMaxCoverageOptions opts;
  opts.k = 2;
  opts.stop_coverage_fraction = 9.0 / 16.0;
  auto solution = RunGreedyMaxCoverage(system_.set_system(), opts);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  ASSERT_FALSE(solution->sets.empty());
  EXPECT_EQ(solution->sets[0], IdOf({"*", "*"}));
  EXPECT_DOUBLE_EQ(solution->total_cost, 96.0);
}

}  // namespace
}  // namespace scwsc
