#include "src/hierarchy/hcmc.h"

#include <cmath>

#include "src/common/bitset.h"

#include "gtest/gtest.h"
#include "src/gen/lbl_synth.h"
#include "src/gen/toy.h"
#include "src/hierarchy/henumerate.h"
#include "src/pattern/opt_cmc.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using hierarchy::AttributeHierarchy;
using hierarchy::RunHierarchicalCmc;
using hierarchy::TableHierarchy;
using pattern::CostFunction;
using pattern::CostKind;

TableHierarchy ToyHierarchy(const Table& table) {
  auto loc = AttributeHierarchy::Build(
      table.dictionary(1), {{"West", "Western"},
                            {"Northwest", "Western"},
                            {"Southwest", "Western"},
                            {"East", "Eastern"},
                            {"Northeast", "Eastern"},
                            {"North", "Central"},
                            {"South", "Central"}});
  EXPECT_TRUE(loc.ok());
  auto th = TableHierarchy::Build(table, {{1, *loc}});
  EXPECT_TRUE(th.ok());
  return std::move(th).value();
}

TEST(HCmcTest, RejectsBadOptions) {
  Table table = gen::MakeEntitiesTable();
  TableHierarchy flat = TableHierarchy::Flat(table);
  CostFunction cost(CostKind::kMax);
  CmcOptions opts;
  opts.k = 0;
  EXPECT_TRUE(RunHierarchicalCmc(table, flat, cost, opts)
                  .status()
                  .IsInvalidArgument());
  opts = CmcOptions{};
  opts.epsilon = -1;
  EXPECT_TRUE(RunHierarchicalCmc(table, flat, cost, opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(HCmcTest, MeetsEnvelopeOnToyWithHierarchy) {
  Table table = gen::MakeEntitiesTable();
  TableHierarchy th = ToyHierarchy(table);
  CostFunction cost(CostKind::kMax);
  for (std::size_t k : {1u, 2u, 3u}) {
    for (double s : {0.3, 0.6, 1.0}) {
      CmcOptions opts;
      opts.k = k;
      opts.coverage_fraction = s;
      auto solution = RunHierarchicalCmc(table, th, cost, opts);
      ASSERT_TRUE(solution.ok())
          << "k=" << k << " s=" << s << ": " << solution.status().ToString();
      const std::size_t relaxed = SetSystem::CoverageTarget(
          (1.0 - 1.0 / M_E) * s, table.num_rows());
      EXPECT_GE(solution->covered, relaxed);
      EXPECT_LE(solution->patterns.size(), CmcMaxSelectable(k, 0.0, 1));
      // Coverage bookkeeping is exact.
      DynamicBitset covered(table.num_rows());
      for (const auto& p : solution->patterns) {
        for (RowId r = 0; r < table.num_rows(); ++r) {
          if (p.Matches(table, th, r)) covered.set(r);
        }
      }
      EXPECT_EQ(solution->covered, covered.count());
    }
  }
}

TEST(HCmcTest, FlatHierarchyTracksFlatOptimizedCmcEnvelope) {
  Table table = gen::MakeEntitiesTable();
  TableHierarchy flat = TableHierarchy::Flat(table);
  CostFunction cost(CostKind::kMax);
  CmcOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  opts.relax_coverage = false;
  auto hier = RunHierarchicalCmc(table, flat, cost, opts);
  auto flat_run = pattern::RunOptimizedCmc(table, cost, opts);
  ASSERT_TRUE(hier.ok()) << hier.status().ToString();
  ASSERT_TRUE(flat_run.ok());
  EXPECT_GE(hier->covered, 9u);
  EXPECT_GE(flat_run->covered, 9u);
  // Same lattice, same pop order keyed on marginal benefit: identical
  // selections (node ids == value ids on flat hierarchies).
  ASSERT_EQ(hier->patterns.size(), flat_run->patterns.size());
  EXPECT_NEAR(hier->total_cost, flat_run->total_cost, 1e-9);
}

TEST(HCmcTest, SelectsWithinHierarchyOnTrace) {
  gen::LblSynthSpec spec;
  spec.num_rows = 2000;
  spec.seed = 9;
  auto trace = gen::MakeLblSynth(spec);
  ASSERT_TRUE(trace.ok());
  std::vector<std::pair<std::string, std::string>> edges;
  for (ValueId v = 0; v < trace->domain_size(3); ++v) {
    const std::string& name = trace->dictionary(3).Name(v);
    edges.emplace_back(name, name == "SF" ? "normal" : "abnormal");
  }
  auto states = AttributeHierarchy::Build(trace->dictionary(3), edges);
  ASSERT_TRUE(states.ok());
  auto th = TableHierarchy::Build(*trace, {{3, *states}});
  ASSERT_TRUE(th.ok());

  pattern::PatternStats stats;
  CmcOptions opts;
  opts.k = 8;
  opts.coverage_fraction = 0.35;
  auto solution = RunHierarchicalCmc(*trace, *th,
                                     CostFunction(CostKind::kMax), opts,
                                     &stats);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  const std::size_t relaxed = SetSystem::CoverageTarget(
      (1.0 - 1.0 / M_E) * 0.35, trace->num_rows());
  EXPECT_GE(solution->covered, relaxed);
  EXPECT_LE(solution->patterns.size(), CmcMaxSelectable(8, 0.0, 1));
  EXPECT_GE(stats.budget_rounds, 1u);
}

TEST(HCmcTest, ZeroTargetIsEmpty) {
  Table table = gen::MakeEntitiesTable();
  TableHierarchy flat = TableHierarchy::Flat(table);
  CmcOptions opts;
  opts.coverage_fraction = 0.0;
  auto solution =
      RunHierarchicalCmc(table, flat, CostFunction(CostKind::kMax), opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->patterns.empty());
}

}  // namespace
}  // namespace scwsc
