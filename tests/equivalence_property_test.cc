// Property tests on random patterned tables, centred on the paper's §V-C1
// claim: "the optimized algorithm chooses exactly the same patterns (and in
// the same order) as the unoptimized algorithm, provided that both
// algorithms break ties (on marginal gain) the same way."
//
// Random tables are generated over a parameter grid (rows, attributes,
// domain sizes, cost function) via TEST_P; each instance compares
// RunOptimizedCwsc against RunCwsc over the fully enumerated PatternSystem
// and checks the CMC envelope (coverage, size, cost within the Theorem 4/5
// factor of the CWSC solution's cost as a sanity anchor).

#include <cmath>
#include <tuple>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/common/run_context.h"
#include "src/core/baselines.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/exact.h"
#include "src/core/instances.h"
#include "src/gen/toy.h"
#include "src/lp/lp_rounding.h"
#include "src/pattern/opt_cmc.h"
#include "src/pattern/opt_cwsc.h"
#include "src/pattern/pattern_system.h"
#include "src/table/builder.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using pattern::CostFunction;
using pattern::CostKind;
using pattern::PatternSystem;

struct GridParam {
  std::size_t rows;
  std::size_t attrs;
  std::size_t domain;
  std::size_t k;
  double fraction;
  CostKind cost_kind;
  std::uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<GridParam>& info) {
  const GridParam& p = info.param;
  std::string kind = p.cost_kind == CostKind::kMax ? "max" : "sum";
  return "r" + std::to_string(p.rows) + "a" + std::to_string(p.attrs) + "d" +
         std::to_string(p.domain) + "k" + std::to_string(p.k) + "f" +
         std::to_string(static_cast<int>(p.fraction * 100)) + kind + "s" +
         std::to_string(p.seed);
}

Table MakeRandomTable(const GridParam& p) {
  Rng rng(p.seed);
  std::vector<std::string> names;
  for (std::size_t a = 0; a < p.attrs; ++a) {
    names.push_back("D" + std::to_string(a));
  }
  TableBuilder builder(names, "m");
  for (std::size_t r = 0; r < p.rows; ++r) {
    std::vector<std::string> values;
    for (std::size_t a = 0; a < p.attrs; ++a) {
      values.push_back("v" + std::to_string(rng.NextBounded(p.domain)));
    }
    std::vector<std::string_view> views(values.begin(), values.end());
    // Small integer measures produce plenty of cost ties, stressing the
    // tie-breaking equivalence.
    EXPECT_TRUE(
        builder.AddRow(views, static_cast<double>(1 + rng.NextBounded(8)))
            .ok());
  }
  return std::move(builder).Build();
}

class EquivalenceTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(EquivalenceTest, OptimizedCwscEqualsEnumeratedCwsc) {
  const GridParam& param = GetParam();
  Table table = MakeRandomTable(param);
  CostFunction cost_fn = param.cost_kind == CostKind::kMax
                             ? CostFunction(CostKind::kMax)
                             : CostFunction(CostKind::kSum);

  auto system = PatternSystem::Build(table, cost_fn);
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  CwscOptions opts{param.k, param.fraction};
  auto unopt = RunCwsc(system->set_system(), opts);
  auto opt = pattern::RunOptimizedCwsc(table, cost_fn, opts);

  ASSERT_TRUE(unopt.ok()) << unopt.status().ToString();
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();

  // Identical pattern sequence, cost and coverage.
  auto unopt_patterns = system->ToPatternSolution(*unopt);
  ASSERT_EQ(opt->patterns.size(), unopt_patterns.patterns.size());
  for (std::size_t i = 0; i < opt->patterns.size(); ++i) {
    EXPECT_EQ(opt->patterns[i], unopt_patterns.patterns[i])
        << "position " << i << ": " << opt->patterns[i].ToString(table)
        << " vs " << unopt_patterns.patterns[i].ToString(table);
  }
  EXPECT_NEAR(opt->total_cost, unopt->total_cost, 1e-9);
  EXPECT_EQ(opt->covered, unopt->covered);
}

TEST_P(EquivalenceTest, CmcVariantsSatisfyTheoremEnvelope) {
  const GridParam& param = GetParam();
  Table table = MakeRandomTable(param);
  CostFunction cost_fn = param.cost_kind == CostKind::kMax
                             ? CostFunction(CostKind::kMax)
                             : CostFunction(CostKind::kSum);
  auto system = PatternSystem::Build(table, cost_fn);
  ASSERT_TRUE(system.ok());

  CmcOptions opts;
  opts.k = param.k;
  opts.coverage_fraction = param.fraction;
  const std::size_t relaxed_target = SetSystem::CoverageTarget(
      (1.0 - 1.0 / M_E) * param.fraction, table.num_rows());

  auto generic = RunCmc(system->set_system(), opts);
  ASSERT_TRUE(generic.ok()) << generic.status().ToString();
  EXPECT_GE(generic->solution.covered, relaxed_target);
  EXPECT_LE(generic->solution.sets.size(), 5 * param.k);

  auto optimized = pattern::RunOptimizedCmc(table, cost_fn, opts);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_GE(optimized->covered, relaxed_target);
  EXPECT_LE(optimized->patterns.size(), 5 * param.k);

  // Optimized CMC must never select duplicate patterns.
  for (std::size_t i = 0; i < optimized->patterns.size(); ++i) {
    for (std::size_t j = i + 1; j < optimized->patterns.size(); ++j) {
      EXPECT_FALSE(optimized->patterns[i] == optimized->patterns[j]);
    }
  }
}

// A RunContext that never trips must be observationally inert: passing an
// explicit unlimited context produces bit-identical output to passing
// nullptr, for every solver. Costs are compared with == on purpose — the
// charging instrumentation must not perturb a single floating-point op.
TEST_P(EquivalenceTest, UnlimitedRunContextIsObservationallyInert) {
  const GridParam& param = GetParam();
  Table table = MakeRandomTable(param);
  CostFunction cost_fn = param.cost_kind == CostKind::kMax
                             ? CostFunction(CostKind::kMax)
                             : CostFunction(CostKind::kSum);
  auto system = PatternSystem::Build(table, cost_fn);
  ASSERT_TRUE(system.ok());

  RunContext unlimited;  // no deadline, no budgets, no cancel
  ASSERT_FALSE(unlimited.limited());

  {
    CwscOptions plain{param.k, param.fraction};
    CwscOptions ctxed = plain;
    ctxed.run_context = &unlimited;
    auto a = RunCwsc(system->set_system(), plain);
    auto b = RunCwsc(system->set_system(), ctxed);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(a->sets, b->sets);
      EXPECT_EQ(a->total_cost, b->total_cost);
      EXPECT_EQ(a->covered, b->covered);
      EXPECT_FALSE(b->provenance.interrupted());
    }
  }
  {
    CmcOptions plain;
    plain.k = param.k;
    plain.coverage_fraction = param.fraction;
    CmcOptions ctxed = plain;
    ctxed.run_context = &unlimited;
    auto a = RunCmc(system->set_system(), plain);
    auto b = RunCmc(system->set_system(), ctxed);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(a->solution.sets, b->solution.sets);
      EXPECT_EQ(a->solution.total_cost, b->solution.total_cost);
      EXPECT_EQ(a->solution.covered, b->solution.covered);
      EXPECT_EQ(a->budget_rounds, b->budget_rounds);
      EXPECT_EQ(a->final_budget, b->final_budget);
      EXPECT_EQ(a->sets_considered, b->sets_considered);
    }
  }
  {
    CwscOptions plain{param.k, param.fraction};
    CwscOptions ctxed = plain;
    ctxed.run_context = &unlimited;
    auto a = pattern::RunOptimizedCwsc(table, cost_fn, plain);
    auto b = pattern::RunOptimizedCwsc(table, cost_fn, ctxed);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      ASSERT_EQ(a->patterns.size(), b->patterns.size());
      for (std::size_t i = 0; i < a->patterns.size(); ++i) {
        EXPECT_EQ(a->patterns[i], b->patterns[i]) << "position " << i;
      }
      EXPECT_EQ(a->total_cost, b->total_cost);
      EXPECT_EQ(a->covered, b->covered);
    }
  }
  {
    CmcOptions plain;
    plain.k = param.k;
    plain.coverage_fraction = param.fraction;
    CmcOptions ctxed = plain;
    ctxed.run_context = &unlimited;
    auto a = pattern::RunOptimizedCmc(table, cost_fn, plain);
    auto b = pattern::RunOptimizedCmc(table, cost_fn, ctxed);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      ASSERT_EQ(a->patterns.size(), b->patterns.size());
      for (std::size_t i = 0; i < a->patterns.size(); ++i) {
        EXPECT_EQ(a->patterns[i], b->patterns[i]) << "position " << i;
      }
      EXPECT_EQ(a->total_cost, b->total_cost);
      EXPECT_EQ(a->covered, b->covered);
    }
  }
}

// Same inertness property for the solvers outside the TEST_P grid:
// baselines, exact branch-and-bound, and LP rounding.
TEST(EquivalenceToyTest, UnlimitedRunContextInertForBaselinesExactAndLp) {
  Rng rng(0x1D3);
  RandomSystemSpec spec;
  spec.num_elements = 120;
  spec.num_sets = 40;
  spec.max_set_size = 12;
  auto system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());

  RunContext unlimited;
  auto expect_same = [](const auto& a, const auto& b) {
    ASSERT_EQ(a.ok(), b.ok());
    if (!a.ok()) return;
    EXPECT_EQ(a->sets, b->sets);
    EXPECT_EQ(a->total_cost, b->total_cost);
    EXPECT_EQ(a->covered, b->covered);
  };

  {
    GreedyWscOptions plain;
    plain.coverage_fraction = 0.7;
    GreedyWscOptions ctxed = plain;
    ctxed.run_context = &unlimited;
    expect_same(RunGreedyWeightedSetCover(*system, plain),
                RunGreedyWeightedSetCover(*system, ctxed));
  }
  {
    GreedyMaxCoverageOptions plain;
    plain.k = 8;
    GreedyMaxCoverageOptions ctxed = plain;
    ctxed.run_context = &unlimited;
    expect_same(RunGreedyMaxCoverage(*system, plain),
                RunGreedyMaxCoverage(*system, ctxed));
  }
  {
    BudgetedMaxCoverageOptions plain;
    plain.budget = 30.0;
    BudgetedMaxCoverageOptions ctxed = plain;
    ctxed.run_context = &unlimited;
    expect_same(RunBudgetedMaxCoverage(*system, plain),
                RunBudgetedMaxCoverage(*system, ctxed));
  }
  {
    ExactOptions plain;
    plain.k = 4;
    plain.coverage_fraction = 0.5;
    ExactOptions ctxed = plain;
    ctxed.run_context = &unlimited;
    auto a = SolveExact(*system, plain);
    auto b = SolveExact(*system, ctxed);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(a->solution.sets, b->solution.sets);
      EXPECT_EQ(a->solution.total_cost, b->solution.total_cost);
      EXPECT_EQ(a->nodes, b->nodes);
    }
  }
  {
    lp::LpScwscOptions plain;
    plain.k = 6;
    plain.coverage_fraction = 0.5;
    plain.trials = 16;
    lp::LpScwscOptions ctxed = plain;
    ctxed.run_context = &unlimited;
    auto a = lp::SolveByLpRounding(*system, plain);
    auto b = lp::SolveByLpRounding(*system, ctxed);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(a->solution.sets, b->solution.sets);
      EXPECT_EQ(a->solution.total_cost, b->solution.total_cost);
      EXPECT_EQ(a->lp_lower_bound, b->lp_lower_bound);
      EXPECT_EQ(a->feasible_trials, b->feasible_trials);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTables, EquivalenceTest,
    ::testing::Values(
        GridParam{30, 2, 3, 3, 0.5, CostKind::kMax, 1},
        GridParam{30, 2, 3, 3, 0.5, CostKind::kSum, 2},
        GridParam{50, 3, 4, 4, 0.4, CostKind::kMax, 3},
        GridParam{50, 3, 4, 4, 0.7, CostKind::kSum, 4},
        GridParam{80, 3, 5, 5, 0.3, CostKind::kMax, 5},
        GridParam{80, 4, 3, 5, 0.6, CostKind::kMax, 6},
        GridParam{120, 4, 4, 6, 0.5, CostKind::kSum, 7},
        GridParam{120, 2, 8, 4, 0.8, CostKind::kMax, 8},
        GridParam{200, 3, 6, 8, 0.4, CostKind::kMax, 9},
        GridParam{200, 5, 3, 6, 0.5, CostKind::kSum, 10},
        GridParam{64, 2, 2, 2, 1.0, CostKind::kMax, 11},
        GridParam{64, 3, 3, 10, 0.9, CostKind::kMax, 12},
        GridParam{150, 4, 5, 3, 0.25, CostKind::kSum, 13},
        GridParam{100, 3, 7, 7, 0.35, CostKind::kMax, 14},
        GridParam{40, 6, 2, 4, 0.5, CostKind::kMax, 15},
        GridParam{250, 3, 5, 5, 0.45, CostKind::kSum, 16}),
    ParamName);

// The paper's own example instance must also satisfy the equivalence.
TEST(EquivalenceToyTest, ToyTableAgreesForManyParameterChoices) {
  Table table = gen::MakeEntitiesTable();
  CostFunction cost_fn(CostKind::kMax);
  auto system = PatternSystem::Build(table, cost_fn);
  ASSERT_TRUE(system.ok());
  for (std::size_t k = 1; k <= 6; ++k) {
    for (double fraction : {0.25, 0.5, 9.0 / 16.0, 0.75, 1.0}) {
      CwscOptions opts{k, fraction};
      auto unopt = RunCwsc(system->set_system(), opts);
      auto opt = pattern::RunOptimizedCwsc(table, cost_fn, opts);
      ASSERT_EQ(unopt.ok(), opt.ok()) << "k=" << k << " f=" << fraction;
      if (!unopt.ok()) continue;
      auto unopt_patterns = system->ToPatternSolution(*unopt);
      ASSERT_EQ(opt->patterns.size(), unopt_patterns.patterns.size())
          << "k=" << k << " f=" << fraction;
      for (std::size_t i = 0; i < opt->patterns.size(); ++i) {
        EXPECT_EQ(opt->patterns[i], unopt_patterns.patterns[i])
            << "k=" << k << " f=" << fraction << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace scwsc
