// Randomized equivalence suite for the benefit engine: every engine
// configuration (eager/lazy, list/bitset/auto membership, 1..N threads) must
// drive every greedy solver to the *identical* solution — same status, same
// set ids in the same order, same cost and coverage — on a spread of seeded
// random instances, including zero-cost sets and duplicate-element inputs.

#include "src/core/benefit_engine.h"

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/core/baselines.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/instances.h"

namespace scwsc {
namespace {

struct NamedEngine {
  const char* name;
  EngineOptions options;
};

/// Every engine configuration under test. The first entry is the seed
/// reference (eager inverted-index decrements over element lists).
std::vector<NamedEngine> AllEngines() {
  std::vector<NamedEngine> engines;
  engines.push_back({"eager/list", SeedReferenceEngine()});

  EngineOptions lazy_list;
  lazy_list.marginal_mode = MarginalMode::kLazy;
  lazy_list.membership = MembershipRepr::kList;
  engines.push_back({"lazy/list", lazy_list});

  EngineOptions lazy_bitset;
  lazy_bitset.marginal_mode = MarginalMode::kLazy;
  lazy_bitset.membership = MembershipRepr::kBitset;
  engines.push_back({"lazy/bitset", lazy_bitset});

  EngineOptions lazy_auto;  // the default fast path
  engines.push_back({"lazy/auto", lazy_auto});

  EngineOptions lazy_auto_mt = lazy_auto;
  lazy_auto_mt.num_threads = 4;
  lazy_auto_mt.min_parallel_batch = 1;  // force the chunked parallel path
  engines.push_back({"lazy/auto/4t", lazy_auto_mt});

  // Sharded lazy engines: per-shard epochs and slice caches must agree
  // with the flat reference bit for bit (ShardBounds clamps the requested
  // count on tiny universes, which is itself part of the contract).
  EngineOptions sharded2 = lazy_auto;
  sharded2.num_shards = 2;
  engines.push_back({"lazy/auto/2shard", sharded2});

  EngineOptions sharded7 = lazy_list;
  sharded7.num_shards = 7;
  engines.push_back({"lazy/list/7shard", sharded7});

  EngineOptions sharded_mt = lazy_auto_mt;  // per-shard batch fan-out
  sharded_mt.num_shards = 5;
  engines.push_back({"lazy/auto/5shard/4t", sharded_mt});
  return engines;
}

/// 20+ seeded instance shapes: dense and sparse, small and large universes,
/// duplicated costs (tie-break stress), tiny max sizes (list-path stress).
std::vector<RandomSystemSpec> InstanceSpecs() {
  std::vector<RandomSystemSpec> specs;
  for (std::uint64_t i = 0; i < 7; ++i) {
    RandomSystemSpec dense;
    dense.num_elements = 80 + 40 * i;
    dense.num_sets = 60 + 10 * i;
    dense.max_set_size = dense.num_elements / 2;
    dense.duplicate_cost_probability = (i % 2 == 0) ? 0.5 : 0.0;
    specs.push_back(dense);

    RandomSystemSpec sparse;
    sparse.num_elements = 500 + 100 * i;
    sparse.num_sets = 120;
    sparse.max_set_size = 4;  // far below one element per word
    sparse.duplicate_cost_probability = 0.3;
    specs.push_back(sparse);

    RandomSystemSpec mixed;
    mixed.num_elements = 256;
    mixed.num_sets = 80 + 20 * i;
    mixed.max_set_size = (i % 2 == 0) ? 8 : 200;
    mixed.min_cost = 0.5;
    mixed.max_cost = 2.0;  // narrow cost band: many near-ties
    specs.push_back(mixed);
  }
  return specs;  // 21 specs
}

Result<SetSystem> BuildInstance(const RandomSystemSpec& spec,
                                std::uint64_t seed) {
  Rng rng(seed);
  Result<SetSystem> system = RandomSetSystem(spec, rng);
  if (!system.ok()) return system;
  // Adversarial extras on every instance: a zero-cost set, an exact duplicate
  // of set 0's elements at a duplicated cost, and a set built from an input
  // list with repeated elements (AddSet must normalize it).
  const std::size_t n = system->num_elements();
  EXPECT_TRUE(
      system->AddSet({0, static_cast<ElementId>(n / 2)}, 0.0, "free").ok());
  EXPECT_TRUE(system
                  ->AddSet(std::vector<ElementId>(system->set(0).elements),
                           system->set(0).cost, "dup0")
                  .ok());
  const ElementId e = static_cast<ElementId>(n - 1);
  EXPECT_TRUE(system->AddSet({e, e, e, 0, 0}, 1.0, "dupelems").ok());
  return system;
}

/// Status code + full solution contents, printable on mismatch.
std::string Fingerprint(const Result<Solution>& result) {
  if (!result.ok()) {
    return std::string("status:") +
           std::string(StatusCodeToString(result.status().code()));
  }
  std::string out = "sets:";
  for (SetId id : result->sets) out += std::to_string(id) + ",";
  out += " cost:" + std::to_string(result->total_cost);
  out += " covered:" + std::to_string(result->covered);
  return out;
}

TEST(BenefitEngineEquivalenceTest, CwscIdenticalAcrossEngines) {
  const auto engines = AllEngines();
  const auto specs = InstanceSpecs();
  ASSERT_GE(specs.size(), 20u);
  std::uint64_t seed = 1;
  for (const RandomSystemSpec& spec : specs) {
    Result<SetSystem> system = BuildInstance(spec, seed++);
    ASSERT_TRUE(system.ok());
    for (double fraction : {0.4, 0.9}) {
      CwscOptions reference_options(6, fraction);
      reference_options.engine = engines[0].options;
      const std::string expected =
          Fingerprint(RunCwsc(*system, reference_options));
      for (std::size_t c = 1; c < engines.size(); ++c) {
        CwscOptions options(6, fraction);
        options.engine = engines[c].options;
        EXPECT_EQ(Fingerprint(RunCwsc(*system, options)), expected)
            << engines[c].name << " seed=" << seed - 1
            << " fraction=" << fraction;
      }
    }
  }
}

TEST(BenefitEngineEquivalenceTest, CmcIdenticalAcrossEngines) {
  const auto engines = AllEngines();
  const auto specs = InstanceSpecs();
  std::uint64_t seed = 101;
  for (const RandomSystemSpec& spec : specs) {
    Result<SetSystem> system = BuildInstance(spec, seed++);
    ASSERT_TRUE(system.ok());
    CmcOptions reference_options;
    reference_options.k = 5;
    reference_options.coverage_fraction = 0.6;
    reference_options.engine = engines[0].options;
    Result<CmcResult> reference = RunCmc(*system, reference_options);
    const std::string expected =
        Fingerprint(reference.ok() ? Result<Solution>(reference->solution)
                                   : Result<Solution>(reference.status()));
    for (std::size_t c = 1; c < engines.size(); ++c) {
      CmcOptions options = reference_options;
      options.engine = engines[c].options;
      Result<CmcResult> got = RunCmc(*system, options);
      EXPECT_EQ(Fingerprint(got.ok() ? Result<Solution>(got->solution)
                                     : Result<Solution>(got.status())),
                expected)
          << engines[c].name << " seed=" << seed - 1;
      if (reference.ok() && got.ok()) {
        EXPECT_EQ(got->budget_rounds, reference->budget_rounds)
            << engines[c].name;
        EXPECT_EQ(got->final_budget, reference->final_budget)
            << engines[c].name;
      }
    }
  }
}

TEST(BenefitEngineEquivalenceTest, GreedyWscIdenticalAcrossEngines) {
  const auto engines = AllEngines();
  const auto specs = InstanceSpecs();
  std::uint64_t seed = 201;
  for (const RandomSystemSpec& spec : specs) {
    Result<SetSystem> system = BuildInstance(spec, seed++);
    ASSERT_TRUE(system.ok());
    GreedyWscOptions reference_options;
    reference_options.coverage_fraction = 0.8;
    reference_options.engine = engines[0].options;
    const std::string expected =
        Fingerprint(RunGreedyWeightedSetCover(*system, reference_options));
    for (std::size_t c = 1; c < engines.size(); ++c) {
      GreedyWscOptions options = reference_options;
      options.engine = engines[c].options;
      EXPECT_EQ(Fingerprint(RunGreedyWeightedSetCover(*system, options)),
                expected)
          << engines[c].name << " seed=" << seed - 1;
    }
  }
}

// Engine-level check: after an arbitrary selection sequence, every engine
// reports the same marginal count for every set, and BatchMarginals agrees
// with MarginalCount (including duplicate ids in the batch).
TEST(BenefitEngineTest, MarginalCountsAgreeAfterRandomSelections) {
  const auto engines = AllEngines();
  std::uint64_t seed = 301;
  for (int round = 0; round < 5; ++round) {
    RandomSystemSpec spec;
    spec.num_elements = 300;
    spec.num_sets = 90;
    spec.max_set_size = 40;
    Result<SetSystem> system = BuildInstance(spec, seed++);
    ASSERT_TRUE(system.ok());
    const std::size_t m = system->num_sets();

    Rng pick_rng(seed * 7919);
    std::vector<SetId> picks;
    for (int p = 0; p < 6; ++p) {
      picks.push_back(static_cast<SetId>(pick_rng.NextBounded(m)));
    }

    std::vector<BenefitEngine> states;
    states.reserve(engines.size());
    for (const NamedEngine& e : engines) {
      states.emplace_back(*system, e.options);
    }
    for (SetId pick : picks) {
      const std::size_t newly = states[0].Select(pick);
      for (std::size_t c = 1; c < states.size(); ++c) {
        EXPECT_EQ(states[c].Select(pick), newly) << engines[c].name;
      }
    }
    std::vector<SetId> batch;
    for (SetId id = 0; id < m; ++id) batch.push_back(id);
    batch.push_back(0);  // duplicate id
    std::vector<std::size_t> reference_counts;
    states[0].BatchMarginals(batch, reference_counts);
    for (std::size_t c = 1; c < states.size(); ++c) {
      std::vector<std::size_t> counts;
      states[c].BatchMarginals(batch, counts);
      EXPECT_EQ(counts, reference_counts) << engines[c].name;
      for (SetId id = 0; id < m; ++id) {
        EXPECT_EQ(states[c].MarginalCount(id), reference_counts[id])
            << engines[c].name << " set " << id;
      }
    }
  }
}

TEST(BenefitEngineTest, AutoModePicksRowsByDensity) {
  SetSystem system(640);  // 10 words
  std::vector<ElementId> dense;
  for (ElementId e = 0; e < 64; e += 2) dense.push_back(e);  // 32 >= 10
  ASSERT_TRUE(system.AddSet(dense, 1.0).ok());
  ASSERT_TRUE(system.AddSet({1, 3, 5}, 1.0).ok());  // 3 < 10: stays a list

  BenefitEngine engine(system);  // default: lazy + auto
  EXPECT_TRUE(engine.UsesBitsetRow(0));
  EXPECT_FALSE(engine.UsesBitsetRow(1));

  EngineOptions all_rows;
  all_rows.membership = MembershipRepr::kBitset;
  BenefitEngine forced(system, all_rows);
  EXPECT_TRUE(forced.UsesBitsetRow(0));
  EXPECT_TRUE(forced.UsesBitsetRow(1));
}

TEST(BenefitEngineTest, ResetRestoresAllMarginals) {
  SetSystem system(100);
  std::vector<ElementId> big;
  for (ElementId e = 0; e < 80; ++e) big.push_back(e);
  ASSERT_TRUE(system.AddSet(big, 2.0).ok());
  ASSERT_TRUE(system.AddSet({70, 71, 90}, 1.0).ok());
  for (const NamedEngine& e : AllEngines()) {
    BenefitEngine engine(system, e.options);
    engine.Select(0);
    EXPECT_EQ(engine.MarginalCount(1), 1u) << e.name;
    engine.Reset();
    EXPECT_EQ(engine.covered_count(), 0u) << e.name;
    EXPECT_EQ(engine.MarginalCount(0), 80u) << e.name;
    EXPECT_EQ(engine.MarginalCount(1), 3u) << e.name;
  }
}

// A shard batch worker dying mid-scan (FaultPoint::kShardWorkerLoss) must
// cost latency only: the lost shards' stripes are recomputed inline, so
// BatchMarginals still returns exactly the flat engine's counts.
TEST(BenefitEngineTest, ShardWorkerLossRecoversExactCounts) {
  RandomSystemSpec spec;
  spec.num_elements = 640;
  spec.num_sets = 120;
  spec.max_set_size = 60;
  Rng rng(424242);
  Result<SetSystem> system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());
  const std::size_t m = system->num_sets();
  std::vector<SetId> batch;
  for (SetId id = 0; id < m; ++id) batch.push_back(id);

  BenefitEngine flat(*system);
  EngineOptions sharded_options;
  sharded_options.num_shards = 8;
  sharded_options.num_threads = 4;
  sharded_options.min_parallel_batch = 1;
  BenefitEngine sharded(*system, sharded_options);

  ScopedFaultPlan plan(7);
  plan.plan().Arm(FaultPoint::kShardWorkerLoss, 1.0);  // every worker dies
  for (SetId pick : {SetId{3}, SetId{41}, SetId{77}}) {
    EXPECT_EQ(sharded.Select(pick), flat.Select(pick));
    std::vector<std::size_t> expected, got;
    ASSERT_TRUE(flat.BatchMarginals(batch, expected).ok());
    ASSERT_TRUE(sharded.BatchMarginals(batch, got).ok());
    EXPECT_EQ(got, expected);
  }
  EXPECT_GT(plan.plan().fires(FaultPoint::kShardWorkerLoss), 0u);
}

TEST(FilterCoveredIdsTest, FiltersEachListIndependently) {
  DynamicBitset covered(10);
  covered.set(2);
  covered.set(7);
  std::vector<std::uint32_t> a = {1, 2, 3, 7};
  std::vector<std::uint32_t> b = {2, 7};
  std::vector<std::uint32_t> c = {0, 9};
  std::vector<std::vector<std::uint32_t>*> lists = {&a, &b, &c};

  ThreadPool pool(4);
  FilterCoveredIds(covered, lists, &pool);
  EXPECT_EQ(a, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c, (std::vector<std::uint32_t>{0, 9}));

  std::vector<std::uint32_t> d = {1, 2, 3, 7};
  std::vector<std::vector<std::uint32_t>*> serial_lists = {&d};
  FilterCoveredIds(covered, serial_lists, nullptr);
  EXPECT_EQ(d, (std::vector<std::uint32_t>{1, 3}));
}

}  // namespace
}  // namespace scwsc
