#include "src/pattern/cost.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/table/builder.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using pattern::CostFunction;
using pattern::CostKind;

Table MakeMeasureTable() {
  TableBuilder builder({"x"}, "m");
  EXPECT_TRUE(builder.AddRow({"a"}, 3.0).ok());
  EXPECT_TRUE(builder.AddRow({"a"}, -4.0).ok());
  EXPECT_TRUE(builder.AddRow({"b"}, 12.0).ok());
  EXPECT_TRUE(builder.AddRow({"b"}, 5.0).ok());
  return std::move(builder).Build();
}

TEST(CostFunctionTest, MaxTakesLargestMeasure) {
  Table t = MakeMeasureTable();
  CostFunction cost(CostKind::kMax);
  EXPECT_DOUBLE_EQ(cost.Compute(t, {0, 1}), 3.0);
  EXPECT_DOUBLE_EQ(cost.Compute(t, {0, 2, 3}), 12.0);
  EXPECT_DOUBLE_EQ(cost.Compute(t, {1}), -4.0);
}

TEST(CostFunctionTest, SumAddsMeasures) {
  Table t = MakeMeasureTable();
  CostFunction cost(CostKind::kSum);
  EXPECT_DOUBLE_EQ(cost.Compute(t, {0, 1}), -1.0);
  EXPECT_DOUBLE_EQ(cost.Compute(t, {2, 3}), 17.0);
  EXPECT_DOUBLE_EQ(cost.Compute(t, {}), 0.0);
}

TEST(CostFunctionTest, L2NormIsEuclidean) {
  Table t = MakeMeasureTable();
  auto cost = CostFunction::LpNorm(2.0);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost->Compute(t, {0, 1}), 5.0);  // sqrt(9 + 16)
}

TEST(CostFunctionTest, L1NormIsAbsoluteSum) {
  Table t = MakeMeasureTable();
  auto cost = CostFunction::LpNorm(1.0);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost->Compute(t, {0, 1}), 7.0);  // |3| + |-4|
}

TEST(CostFunctionTest, LpNormRejectsBadExponents) {
  EXPECT_TRUE(CostFunction::LpNorm(0.5).status().IsInvalidArgument());
  EXPECT_TRUE(CostFunction::LpNorm(std::nan("")).status().IsInvalidArgument());
}

TEST(CostFunctionTest, NamesAreDescriptive) {
  EXPECT_EQ(CostFunction(CostKind::kMax).Name(), "max");
  EXPECT_EQ(CostFunction(CostKind::kSum).Name(), "sum");
  EXPECT_EQ(CostFunction::LpNorm(2.0)->Name(), "l2-norm");
}

TEST(CostFunctionTest, SingleRowCostsAreTheMeasureItself) {
  Table t = MakeMeasureTable();
  for (CostKind kind : {CostKind::kMax, CostKind::kSum}) {
    CostFunction cost(kind);
    EXPECT_DOUBLE_EQ(cost.Compute(t, {2}), 12.0);
  }
  EXPECT_DOUBLE_EQ(CostFunction::LpNorm(3.0)->Compute(t, {2}), 12.0);
}

TEST(CostFunctionTest, MonotoneUnderRowAdditionForNonNegativeMeasures) {
  TableBuilder builder({"x"}, "m");
  for (int i = 0; i < 6; ++i) {
    SCWSC_ASSERT_OK(builder.AddRow({"a"}, 1.0 + i));
  }
  Table t = std::move(builder).Build();
  for (CostKind kind : {CostKind::kMax, CostKind::kSum}) {
    CostFunction cost(kind);
    double prev = 0.0;
    std::vector<RowId> rows;
    for (RowId r = 0; r < 6; ++r) {
      rows.push_back(r);
      const double c = cost.Compute(t, rows);
      EXPECT_GE(c, prev) << cost.Name();
      prev = c;
    }
  }
}

}  // namespace
}  // namespace scwsc
