// Tests for the mergeable log-bucketed quantile sketch: the relative-error
// contract against exact nearest-rank quantiles, merge = concatenation, the
// zero bucket, and the MetricSketch registry instrument.

#include "src/obs/sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/metrics.h"
#include "tests/test_util.h"

namespace scwsc {
namespace obs {
namespace {

/// Deterministic pseudo-random stream (SplitMix64) so the sample sets are
/// identical on every platform without <random> distribution differences.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Latency-shaped samples spanning several orders of magnitude
/// (microseconds to tens of seconds), the regime the sketch serves.
std::vector<double> LatencySamples(std::size_t n, std::uint64_t seed) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double unit =
        static_cast<double>(Mix(seed + i) >> 11) * (1.0 / 9007199254740992.0);
    out.push_back(std::pow(10.0, -6.0 + 7.0 * unit));  // 1e-6 .. 1e1
  }
  return out;
}

/// The exact quantile under the sketch's stated convention:
/// rank = round(q * (n - 1)) over the sorted sample.
double ExactQuantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(sorted.size() - 1)));
  return sorted[rank];
}

TEST(QuantileSketchTest, QuantilesSatisfyRelativeErrorBound) {
  const double alpha = 0.01;
  QuantileSketch sketch(alpha);
  const std::vector<double> samples = LatencySamples(5000, 42);
  for (double v : samples) sketch.Observe(v);
  ASSERT_EQ(sketch.count(), samples.size());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double exact = ExactQuantile(samples, q);
    const double est = sketch.Quantile(q);
    EXPECT_NEAR(est, exact, alpha * exact + 1e-15)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(QuantileSketchTest, CoarseAlphaStillBoundsError) {
  const double alpha = 0.1;
  QuantileSketch sketch(alpha);
  const std::vector<double> samples = LatencySamples(2000, 7);
  for (double v : samples) sketch.Observe(v);
  for (double q : {0.25, 0.5, 0.75, 0.95}) {
    const double exact = ExactQuantile(samples, q);
    EXPECT_NEAR(sketch.Quantile(q), exact, alpha * exact + 1e-15);
  }
}

TEST(QuantileSketchTest, MergeEqualsSketchOfConcatenation) {
  QuantileSketch a, b, whole;
  const std::vector<double> first = LatencySamples(1000, 1);
  const std::vector<double> second = LatencySamples(1500, 2);
  for (double v : first) {
    a.Observe(v);
    whole.Observe(v);
  }
  for (double v : second) {
    b.Observe(v);
    whole.Observe(v);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketchTest, MergeRejectsMismatchedRelativeError) {
  QuantileSketch fine(0.01), coarse(0.05);
  fine.Observe(1.0);
  coarse.Observe(2.0);
  const Status status = fine.Merge(coarse);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(fine.count(), 1u);  // failed merge leaves the target untouched
}

TEST(QuantileSketchTest, NonPositiveValuesLandInZeroBucket) {
  QuantileSketch sketch;
  sketch.Observe(0.0);
  sketch.Observe(-3.0);
  sketch.Observe(1e-15);  // below kMinTrackable
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_EQ(sketch.zero_count(), 3u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
  // Zeros sort below every positive sample.
  sketch.Observe(5.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 0.0);
  EXPECT_NEAR(sketch.Quantile(1.0), 5.0, 0.01 * 5.0);
}

TEST(QuantileSketchTest, EmptySketchReturnsZeroEverywhere) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 0.0);
}

TEST(QuantileSketchTest, SingleSampleIsReturnedExactly) {
  QuantileSketch sketch;
  sketch.Observe(0.125);
  // Bucket midpoints are clamped to [min, max], so one sample round-trips.
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(sketch.Quantile(q), 0.125);
  }
}

TEST(QuantileSketchTest, QuantileArgumentIsClamped) {
  QuantileSketch sketch;
  sketch.Observe(1.0);
  sketch.Observe(2.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(-0.5), sketch.Quantile(0.0));
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.5), sketch.Quantile(1.0));
}

TEST(MetricSketchTest, RegistryGetOrCreateIsStableAndConcurrent) {
  MetricRegistry registry;
  MetricSketch& a = registry.sketch("serve.latency_seconds#cwsc");
  MetricSketch& b = registry.sketch("serve.latency_seconds#cwsc");
  EXPECT_EQ(&a, &b);

  constexpr int kThreads = 8;
  constexpr int kObs = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      MetricSketch& s = registry.sketch("serve.latency_seconds#cwsc");
      for (int i = 0; i < kObs; ++i) {
        s.Observe(0.001 * static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const QuantileSketch snap = a.snapshot();
  EXPECT_EQ(snap.count(), static_cast<std::uint64_t>(kThreads) * kObs);
  const auto values = registry.SketchValues();
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].first, "serve.latency_seconds#cwsc");
  EXPECT_EQ(values[0].second.count(), snap.count());
}

}  // namespace
}  // namespace obs
}  // namespace scwsc
