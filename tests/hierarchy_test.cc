#include "src/hierarchy/hierarchy.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "src/gen/toy.h"
#include "src/hierarchy/hpattern.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using hierarchy::AttributeHierarchy;
using hierarchy::HPattern;
using hierarchy::kAllNode;
using hierarchy::kNoNode;
using hierarchy::NodeId;
using hierarchy::TableHierarchy;

/// The paper's Location domain rolled up into compass regions.
std::vector<std::pair<std::string, std::string>> LocationEdges() {
  return {
      {"West", "Western"},      {"Northwest", "Western"},
      {"Southwest", "Western"}, {"East", "Eastern"},
      {"Northeast", "Eastern"}, {"North", "Central"},
      {"South", "Central"},
  };
}

TEST(AttributeHierarchyTest, FlatHasEveryLeafAsRoot) {
  AttributeHierarchy h = AttributeHierarchy::Flat(4);
  EXPECT_EQ(h.num_leaves(), 4u);
  EXPECT_EQ(h.num_nodes(), 4u);
  EXPECT_EQ(h.roots().size(), 4u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(h.parent(v), kNoNode);
    EXPECT_EQ(h.depth(v), 0u);
    EXPECT_TRUE(h.children(v).empty());
    EXPECT_EQ(h.LeafCount(v), 1u);
    EXPECT_EQ(h.AncestorAtDepth(v, 0), v);
  }
}

TEST(AttributeHierarchyTest, BuildRollsUpLocations) {
  Table table = gen::MakeEntitiesTable();
  auto h = AttributeHierarchy::Build(table.dictionary(1), LocationEdges());
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h->num_leaves(), 7u);
  EXPECT_EQ(h->num_nodes(), 10u);  // 7 leaves + 3 regions
  EXPECT_EQ(h->roots().size(), 3u);

  const auto west = *table.dictionary(1).Find("West");
  const auto northeast = *table.dictionary(1).Find("Northeast");
  const NodeId western = h->parent(west);
  ASSERT_NE(western, kNoNode);
  EXPECT_EQ(h->NodeName(table.dictionary(1), western), "Western");
  EXPECT_EQ(h->depth(west), 1u);
  EXPECT_EQ(h->depth(western), 0u);
  EXPECT_EQ(h->LeafCount(western), 3u);
  EXPECT_TRUE(h->IsAncestorOrSelf(western, west));
  EXPECT_FALSE(h->IsAncestorOrSelf(western, northeast));
  EXPECT_TRUE(h->IsAncestorOrSelf(west, west));
  EXPECT_EQ(h->AncestorAtDepth(west, 0), western);
  EXPECT_EQ(h->AncestorAtDepth(west, 1), west);
}

TEST(AttributeHierarchyTest, RejectsParentCollidingWithLeaf) {
  Table table = gen::MakeEntitiesTable();
  auto h = AttributeHierarchy::Build(table.dictionary(1),
                                     {{"West", "East"}});  // East is a leaf
  EXPECT_TRUE(h.status().IsInvalidArgument());
}

TEST(AttributeHierarchyTest, RejectsMultipleParents) {
  Table table = gen::MakeEntitiesTable();
  auto h = AttributeHierarchy::Build(
      table.dictionary(1), {{"West", "RegionA"}, {"West", "RegionB"},
                            {"East", "RegionB"}});
  EXPECT_TRUE(h.status().IsInvalidArgument());
}

TEST(AttributeHierarchyTest, RejectsCycles) {
  Table table = gen::MakeEntitiesTable();
  auto h = AttributeHierarchy::Build(
      table.dictionary(1),
      {{"West", "A"}, {"A", "B"}, {"B", "A"}});
  EXPECT_TRUE(h.status().IsInvalidArgument());
}

TEST(AttributeHierarchyTest, RejectsChildlessInternalNode) {
  Table table = gen::MakeEntitiesTable();
  // "B" is internal (parent of A) but A has no children pointing... build
  // an internal node that never receives children by making it a child
  // only: {"A" -> "B"} gives B children {A}, A children {} but A is
  // internal (not a dictionary value) and childless.
  auto h = AttributeHierarchy::Build(table.dictionary(1), {{"A", "B"}});
  EXPECT_TRUE(h.status().IsInvalidArgument());
}

TEST(AttributeHierarchyTest, MultiLevelDepthAndChains) {
  Table table = gen::MakeEntitiesTable();
  auto edges = LocationEdges();
  edges.emplace_back("Western", "Anywhere");
  edges.emplace_back("Eastern", "Anywhere");
  edges.emplace_back("Central", "Anywhere");
  auto h = AttributeHierarchy::Build(table.dictionary(1), edges);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h->roots().size(), 1u);
  const auto west = *table.dictionary(1).Find("West");
  EXPECT_EQ(h->depth(west), 2u);
  const NodeId root = h->roots()[0];
  EXPECT_EQ(h->NodeName(table.dictionary(1), root), "Anywhere");
  EXPECT_EQ(h->LeafCount(root), 7u);
  EXPECT_EQ(h->AncestorAtDepth(west, 0), root);
  EXPECT_TRUE(h->IsAncestorOrSelf(root, west));
}

TEST(TableHierarchyTest, FlatCoversEveryAttribute) {
  Table table = gen::MakeEntitiesTable();
  TableHierarchy th = TableHierarchy::Flat(table);
  EXPECT_EQ(th.num_attributes(), 2u);
  EXPECT_EQ(th.attribute(0).num_leaves(), table.domain_size(0));
  EXPECT_EQ(th.attribute(1).num_leaves(), table.domain_size(1));
}

TEST(TableHierarchyTest, BuildValidatesOverrides) {
  Table table = gen::MakeEntitiesTable();
  auto wrong = AttributeHierarchy::Flat(99);
  EXPECT_TRUE(
      TableHierarchy::Build(table, {{1, wrong}}).status().IsInvalidArgument());
  EXPECT_TRUE(TableHierarchy::Build(table, {{7, AttributeHierarchy::Flat(2)}})
                  .status()
                  .IsInvalidArgument());
}

TEST(HPatternTest, MatchesThroughHierarchy) {
  Table table = gen::MakeEntitiesTable();
  auto loc = AttributeHierarchy::Build(table.dictionary(1), LocationEdges());
  ASSERT_TRUE(loc.ok());
  auto th = TableHierarchy::Build(table, {{1, *loc}});
  ASSERT_TRUE(th.ok());

  // {Type=ALL, Location=Western} covers West, Northwest, Southwest rows:
  // ids 0, 5, 6, 7, 8, 9 (rows 1, 6, 7, 8, 9, 10 in paper numbering).
  const NodeId western =
      th->attribute(1).parent(*table.dictionary(1).Find("West"));
  HPattern p = HPattern::AllWildcards(2).WithNode(1, western);
  std::vector<RowId> matched;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (p.Matches(table, *th, r)) matched.push_back(r);
  }
  EXPECT_EQ(matched, (std::vector<RowId>{0, 5, 6, 7, 8, 9}));
  EXPECT_EQ(p.ToString(table, *th), "{Type=ALL, Location=Western}");
}

TEST(HPatternTest, ParentAtWalksUpAndEndsAtAll) {
  Table table = gen::MakeEntitiesTable();
  auto loc = AttributeHierarchy::Build(table.dictionary(1), LocationEdges());
  ASSERT_TRUE(loc.ok());
  auto th = TableHierarchy::Build(table, {{1, *loc}});
  ASSERT_TRUE(th.ok());

  const NodeId west = *table.dictionary(1).Find("West");
  HPattern leaf = HPattern::AllWildcards(2).WithNode(1, west);
  HPattern region = leaf.ParentAt(*th, 1);
  EXPECT_EQ(th->attribute(1).NodeName(table.dictionary(1), region.node(1)),
            "Western");
  HPattern all = region.ParentAt(*th, 1);
  EXPECT_TRUE(all.is_wildcard(1));
}

TEST(HPatternTest, CanonicalLessIsStrictTotalOrder) {
  std::vector<HPattern> patterns = {
      HPattern({0, 1}), HPattern({0, kAllNode}), HPattern({kAllNode, 1}),
      HPattern({kAllNode, kAllNode}), HPattern({2, 0})};
  std::sort(patterns.begin(), patterns.end(), hierarchy::CanonicalLess);
  for (std::size_t i = 0; i + 1 < patterns.size(); ++i) {
    EXPECT_TRUE(hierarchy::CanonicalLess(patterns[i], patterns[i + 1]));
    EXPECT_FALSE(hierarchy::CanonicalLess(patterns[i + 1], patterns[i]));
  }
}

}  // namespace
}  // namespace scwsc
