// The serve layer's recovery policies in isolation: backoff bounds and
// determinism, retryability classification, per-label retry budgets against
// an explicit clock, circuit-breaker state transitions, the degradation
// ladder, and the FaultPlan primitive they all react to.

#include "src/serve/resilience.h"

#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/fault.h"
#include "src/obs/metrics.h"

namespace scwsc {
namespace {

using serve::CircuitBreaker;
using serve::CircuitBreakerOptions;
using serve::DegradationLadder;
using serve::NextBackoffMs;
using serve::RetryBudget;
using serve::RetryBudgetOptions;
using serve::RetryPolicy;

using Clock = std::chrono::steady_clock;

Clock::time_point At(double seconds) {
  return Clock::time_point{} +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double>(seconds));
}

// --- backoff ---------------------------------------------------------------

TEST(BackoffTest, StaysWithinDecorrelatedJitterBounds) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 2.0;
  policy.max_backoff_ms = 100.0;
  policy.jitter_seed = 7;

  double prev = 0.0;
  for (std::uint64_t draw = 0; draw < 200; ++draw) {
    const double next = NextBackoffMs(policy, prev, draw);
    EXPECT_GE(next, policy.initial_backoff_ms);
    EXPECT_LE(next, policy.max_backoff_ms);
    // Decorrelated jitter: uniform(initial, 3 * prev), so the wait never
    // exceeds 3x the previous one (modulo the initial floor).
    if (prev > policy.initial_backoff_ms) {
      EXPECT_LE(next, 3.0 * prev);
    }
    prev = next;
  }
}

TEST(BackoffTest, SameSeedSameDrawIsDeterministic) {
  RetryPolicy policy;
  policy.jitter_seed = 42;
  for (std::uint64_t draw = 0; draw < 32; ++draw) {
    EXPECT_EQ(NextBackoffMs(policy, 10.0, draw),
              NextBackoffMs(policy, 10.0, draw));
  }
  // ...and different draws actually vary (not a constant function).
  std::set<double> waits;
  for (std::uint64_t draw = 0; draw < 32; ++draw) {
    waits.insert(NextBackoffMs(policy, 10.0, draw));
  }
  EXPECT_GT(waits.size(), 1u);
}

TEST(BackoffTest, RetryableFailuresAreInternalAndUnavailableOnly) {
  EXPECT_TRUE(serve::IsRetryableFailure(Status::Internal("transient")));
  EXPECT_TRUE(serve::IsRetryableFailure(Status::Unavailable("breaker open")));
  // Interruptions carry partial payloads; config errors repeat identically.
  EXPECT_FALSE(serve::IsRetryableFailure(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(serve::IsRetryableFailure(Status::Cancelled("ctrl-c")));
  EXPECT_FALSE(serve::IsRetryableFailure(Status::InvalidArgument("bad k")));
  EXPECT_FALSE(serve::IsRetryableFailure(Status::NotFound("no file")));
  EXPECT_FALSE(serve::IsRetryableFailure(Status::OK()));
}

// --- retry budget ----------------------------------------------------------

TEST(RetryBudgetTest, BucketDrainsThenRefillsAtConfiguredRate) {
  RetryBudgetOptions options;
  options.tokens_per_second = 2.0;
  options.burst = 3.0;
  RetryBudget budget(options);

  // A fresh label starts with a full burst.
  EXPECT_DOUBLE_EQ(budget.available("tenant-a", At(0.0)), 3.0);
  EXPECT_TRUE(budget.TryAcquire("tenant-a", At(0.0)));
  EXPECT_TRUE(budget.TryAcquire("tenant-a", At(0.0)));
  EXPECT_TRUE(budget.TryAcquire("tenant-a", At(0.0)));
  EXPECT_FALSE(budget.TryAcquire("tenant-a", At(0.0)));

  // Half a second refills one token at 2 tokens/s.
  EXPECT_TRUE(budget.TryAcquire("tenant-a", At(0.5)));
  EXPECT_FALSE(budget.TryAcquire("tenant-a", At(0.5)));

  // Refill is capped at burst, not unbounded.
  EXPECT_DOUBLE_EQ(budget.available("tenant-a", At(100.0)), 3.0);
}

TEST(RetryBudgetTest, LabelsHaveIndependentBuckets) {
  RetryBudgetOptions options;
  options.tokens_per_second = 1.0;
  options.burst = 1.0;
  RetryBudget budget(options);

  EXPECT_TRUE(budget.TryAcquire("a", At(0.0)));
  EXPECT_FALSE(budget.TryAcquire("a", At(0.0)));
  // Draining "a" leaves "b" untouched.
  EXPECT_TRUE(budget.TryAcquire("b", At(0.0)));
}

// --- circuit breaker -------------------------------------------------------

CircuitBreakerOptions SmallBreaker() {
  CircuitBreakerOptions options;
  options.enabled = true;
  options.failure_threshold = 2;
  options.open_seconds = 1.0;
  options.half_open_successes = 2;
  return options;
}

TEST(CircuitBreakerTest, DisabledBreakerAdmitsEverything) {
  CircuitBreaker breaker(CircuitBreakerOptions{});
  for (int i = 0; i < 10; ++i) breaker.RecordFailure(At(0.0));
  EXPECT_TRUE(breaker.Admit(At(0.0)).ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, WalksClosedOpenHalfOpenClosed) {
  obs::MetricRegistry metrics;
  CircuitBreaker breaker(SmallBreaker(), &metrics);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  // Two consecutive failures open it.
  breaker.RecordFailure(At(0.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(At(0.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // While open, admission is a typed Unavailable naming the wait.
  Status rejected = breaker.Admit(At(0.5));
  EXPECT_TRUE(rejected.IsUnavailable());
  EXPECT_NE(rejected.ToString().find("retry after"), std::string::npos);

  // After open_seconds, the next Admit becomes a half-open probe.
  EXPECT_TRUE(breaker.Admit(At(1.5)).ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  // half_open_successes = 2 consecutive successes close it again.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  EXPECT_EQ(metrics.CounterValue("serve.breaker.opened"), 1u);
  EXPECT_EQ(metrics.CounterValue("serve.breaker.half_opened"), 1u);
  EXPECT_EQ(metrics.CounterValue("serve.breaker.closed"), 1u);
  EXPECT_EQ(metrics.CounterValue("serve.breaker.rejected"), 1u);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopens) {
  CircuitBreaker breaker(SmallBreaker());
  breaker.RecordFailure(At(0.0));
  breaker.RecordFailure(At(0.0));
  ASSERT_TRUE(breaker.Admit(At(2.0)).ok());  // half-open probe
  breaker.RecordFailure(At(2.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // The fresh open period counts from the half-open failure.
  EXPECT_TRUE(breaker.Admit(At(2.5)).IsUnavailable());
  EXPECT_TRUE(breaker.Admit(At(3.5)).ok());
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveFailureCount) {
  CircuitBreaker breaker(SmallBreaker());
  breaker.RecordFailure(At(0.0));
  breaker.RecordSuccess();
  breaker.RecordFailure(At(0.0));
  // Never two *consecutive* failures, so still closed.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, BankSharesOneBreakerPerSolver) {
  serve::BreakerBank bank(SmallBreaker());
  CircuitBreaker& cwsc = bank.ForSolver("cwsc");
  EXPECT_EQ(&cwsc, &bank.ForSolver("cwsc"));
  EXPECT_NE(&cwsc, &bank.ForSolver("cmc"));
  cwsc.RecordFailure(At(0.0));
  cwsc.RecordFailure(At(0.0));
  EXPECT_EQ(bank.ForSolver("cwsc").state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(bank.ForSolver("cmc").state(), CircuitBreaker::State::kClosed);
}

// --- degradation ladder ----------------------------------------------------

TEST(DegradationLadderTest, EmptyByDefaultAndChainsWhenConfigured) {
  DegradationLadder ladder;
  EXPECT_TRUE(ladder.empty());
  EXPECT_EQ(ladder.FallbackFor("exact"), nullptr);

  ladder.AddRung("exact", "cwsc").AddRung("cwsc", "greedy-wsc");
  ASSERT_NE(ladder.FallbackFor("exact"), nullptr);
  EXPECT_EQ(*ladder.FallbackFor("exact"), "cwsc");
  ASSERT_NE(ladder.FallbackFor("cwsc"), nullptr);
  EXPECT_EQ(*ladder.FallbackFor("cwsc"), "greedy-wsc");
  EXPECT_EQ(ladder.FallbackFor("greedy-wsc"), nullptr);
}

TEST(DegradationLadderTest, DefaultLadderBottomsOutAtBaselines) {
  const DegradationLadder ladder = DegradationLadder::Default();
  EXPECT_FALSE(ladder.empty());
  // Every configured chain terminates (no cycles) within a short walk.
  for (const char* start : {"exact", "opt-cwsc", "opt-cmc", "hcwsc", "hcmc",
                            "lp-rounding", "cwsc", "cmc"}) {
    std::string at = start;
    int hops = 0;
    while (const std::string* next = ladder.FallbackFor(at)) {
      at = *next;
      ASSERT_LT(++hops, 8) << "cycle reached from " << start;
    }
    EXPECT_TRUE(at == "greedy-wsc" || at == "greedy-max-coverage")
        << start << " bottoms out at " << at;
  }
}

// --- fault plan ------------------------------------------------------------

TEST(FaultPlanTest, PointNamesRoundTrip) {
  for (int i = 0; i < kNumFaultPoints; ++i) {
    const FaultPoint point = static_cast<FaultPoint>(i);
    auto parsed = FaultPointFromString(FaultPointToString(point));
    ASSERT_TRUE(parsed.ok()) << FaultPointToString(point);
    EXPECT_EQ(*parsed, point);
  }
  EXPECT_TRUE(FaultPointFromString("not_a_point").status().IsInvalidArgument());
}

TEST(FaultPlanTest, DecisionsAreDeterministicPerSeedAndDraw) {
  std::vector<bool> first, second;
  FaultPlan a(123);
  a.Arm(FaultPoint::kSolverError, 0.5);
  for (int i = 0; i < 256; ++i) {
    first.push_back(a.ShouldFire(FaultPoint::kSolverError));
  }
  FaultPlan b(123);
  b.Arm(FaultPoint::kSolverError, 0.5);
  for (int i = 0; i < 256; ++i) {
    second.push_back(b.ShouldFire(FaultPoint::kSolverError));
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(a.draws(FaultPoint::kSolverError), 256u);
  EXPECT_EQ(a.fires(FaultPoint::kSolverError),
            b.fires(FaultPoint::kSolverError));

  // A different seed produces a different firing pattern (overwhelmingly).
  FaultPlan c(124);
  c.Arm(FaultPoint::kSolverError, 0.5);
  std::vector<bool> third;
  for (int i = 0; i < 256; ++i) {
    third.push_back(c.ShouldFire(FaultPoint::kSolverError));
  }
  EXPECT_NE(first, third);
}

TEST(FaultPlanTest, ProbabilityExtremesAndDisarmedPoints) {
  FaultPlan plan(9);
  plan.Arm(FaultPoint::kSolverError, 1.0);
  plan.Arm(FaultPoint::kSolverThrow, 0.0);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(plan.ShouldFire(FaultPoint::kSolverError));
    EXPECT_FALSE(plan.ShouldFire(FaultPoint::kSolverThrow));
    // Never-armed points fire nothing and count nothing.
    EXPECT_FALSE(plan.ShouldFire(FaultPoint::kPoolTaskLoss));
  }
  EXPECT_EQ(plan.fires(FaultPoint::kSolverError), 64u);
  EXPECT_EQ(plan.draws(FaultPoint::kPoolTaskLoss), 0u);

  const double p = 0.25;
  plan.Arm(FaultPoint::kSnapshotAlloc, p);
  int fired = 0;
  const int kDraws = 4096;
  for (int i = 0; i < kDraws; ++i) {
    if (plan.ShouldFire(FaultPoint::kSnapshotAlloc)) ++fired;
  }
  // Law-of-large-numbers sanity: the empirical rate tracks p.
  EXPECT_NEAR(static_cast<double>(fired) / kDraws, p, 0.05);
}

TEST(FaultPlanTest, InstallationGatesFaultFires) {
  // No plan installed: sites never fire.
  EXPECT_EQ(FaultPlan::Active(), nullptr);
  EXPECT_FALSE(FaultFires(FaultPoint::kSolverError));
  {
    ScopedFaultPlan chaos(/*seed=*/5);
    chaos.plan().Arm(FaultPoint::kSolverError, 1.0);
    EXPECT_EQ(FaultPlan::Active(), &chaos.plan());
    EXPECT_TRUE(FaultFires(FaultPoint::kSolverError));
    EXPECT_FALSE(FaultFires(FaultPoint::kSolverThrow));  // disarmed
  }
  // Scope exit uninstalls.
  EXPECT_EQ(FaultPlan::Active(), nullptr);
  EXPECT_FALSE(FaultFires(FaultPoint::kSolverError));
}

}  // namespace
}  // namespace scwsc
