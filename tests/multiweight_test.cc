#include "src/ext/multiweight.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/solution.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using ext::Dominates;
using ext::MultiSolution;
using ext::MultiWeightSetSystem;
using ext::ParetoFilter;
using ext::Scalarizer;
using ext::SweepScalarizations;

MultiWeightSetSystem MakeSystem() {
  // Two objectives: build cost and staffing cost. Sets trade them off.
  MultiWeightSetSystem system(8, 2);
  EXPECT_TRUE(system.AddSet({0, 1, 2, 3}, {10.0, 1.0}, "cheap-staff").ok());
  EXPECT_TRUE(system.AddSet({0, 1, 2, 3}, {1.0, 10.0}, "cheap-build").ok());
  EXPECT_TRUE(system.AddSet({4, 5, 6, 7}, {5.0, 5.0}, "balanced").ok());
  EXPECT_TRUE(
      system.AddSet({0, 1, 2, 3, 4, 5, 6, 7}, {20.0, 20.0}, "universe").ok());
  return system;
}

TEST(MultiWeightSetSystemTest, ValidatesCostVectors) {
  MultiWeightSetSystem system(4, 2);
  EXPECT_TRUE(system.AddSet({0}, {1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(
      system.AddSet({0}, {1.0, -2.0}).status().IsInvalidArgument());
  EXPECT_TRUE(system.AddSet({9}, {1.0, 1.0}).status().IsInvalidArgument());
}

TEST(ScalarizerTest, WeightedSumApplies) {
  auto sc = Scalarizer::WeightedSum({2.0, 3.0});
  ASSERT_TRUE(sc.ok());
  EXPECT_DOUBLE_EQ(sc->Apply({1.0, 1.0}), 5.0);
  EXPECT_DOUBLE_EQ(sc->Apply({0.5, 2.0}), 7.0);
}

TEST(ScalarizerTest, ChebyshevTakesWeightedMax) {
  auto sc = Scalarizer::WeightedChebyshev({1.0, 2.0});
  ASSERT_TRUE(sc.ok());
  EXPECT_DOUBLE_EQ(sc->Apply({5.0, 1.0}), 5.0);
  EXPECT_DOUBLE_EQ(sc->Apply({1.0, 5.0}), 10.0);
}

TEST(ScalarizerTest, ValidatesLambda) {
  EXPECT_TRUE(Scalarizer::WeightedSum({}).status().IsInvalidArgument());
  EXPECT_TRUE(
      Scalarizer::WeightedSum({-1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(Scalarizer::WeightedChebyshev({std::nan("")})
                  .status()
                  .IsInvalidArgument());
}

TEST(MultiWeightSetSystemTest, ScalarizePreservesIdsAndElements) {
  MultiWeightSetSystem system = MakeSystem();
  auto sc = Scalarizer::WeightedSum({1.0, 1.0});
  ASSERT_TRUE(sc.ok());
  auto scalar = system.Scalarize(*sc);
  ASSERT_TRUE(scalar.ok());
  ASSERT_EQ(scalar->num_sets(), system.num_sets());
  EXPECT_DOUBLE_EQ(scalar->set(0).cost, 11.0);
  EXPECT_DOUBLE_EQ(scalar->set(2).cost, 10.0);
  EXPECT_EQ(scalar->set(3).elements.size(), 8u);
}

TEST(MultiWeightSetSystemTest, ScalarizeRejectsArityMismatch) {
  MultiWeightSetSystem system = MakeSystem();
  auto sc = Scalarizer::WeightedSum({1.0});
  ASSERT_TRUE(sc.ok());
  EXPECT_TRUE(system.Scalarize(*sc).status().IsInvalidArgument());
}

TEST(DominatesTest, StrictOnAtLeastOneObjective) {
  MultiSolution a, b;
  a.objective_costs = {1.0, 2.0};
  b.objective_costs = {2.0, 2.0};
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_FALSE(Dominates(b, a));
  MultiSolution c;
  c.objective_costs = {1.0, 2.0};
  EXPECT_FALSE(Dominates(a, c));  // equal does not dominate
  MultiSolution d;
  d.objective_costs = {0.5, 3.0};
  EXPECT_FALSE(Dominates(a, d));  // incomparable
  EXPECT_FALSE(Dominates(d, a));
}

TEST(ParetoFilterTest, RemovesDominatedAndDuplicates) {
  MultiSolution a;
  a.solution.sets = {0};
  a.objective_costs = {1.0, 5.0};
  MultiSolution b;
  b.solution.sets = {1};
  b.objective_costs = {5.0, 1.0};
  MultiSolution dominated;
  dominated.solution.sets = {2};
  dominated.objective_costs = {6.0, 6.0};
  MultiSolution duplicate = a;

  auto front = ParetoFilter({a, b, dominated, duplicate});
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0].solution.sets, a.solution.sets);
  EXPECT_EQ(front[1].solution.sets, b.solution.sets);
}

TEST(SweepScalarizationsTest, ProducesAParetoFront) {
  MultiWeightSetSystem system = MakeSystem();
  CwscOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 0.5;
  std::vector<Scalarizer> scalarizers = {
      *Scalarizer::WeightedSum({1.0, 0.0}),
      *Scalarizer::WeightedSum({0.0, 1.0}),
      *Scalarizer::WeightedSum({0.5, 0.5}),
      *Scalarizer::WeightedChebyshev({1.0, 1.0}),
  };
  auto front = SweepScalarizations(system, opts, scalarizers);
  ASSERT_TRUE(front.ok()) << front.status().ToString();
  ASSERT_FALSE(front->empty());
  // No member of the front may dominate another.
  for (std::size_t i = 0; i < front->size(); ++i) {
    for (std::size_t j = 0; j < front->size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Dominates((*front)[i], (*front)[j]));
    }
  }
  // Objective totals are exact per-objective sums.
  for (const auto& ms : *front) {
    std::vector<double> totals(2, 0.0);
    for (SetId id : ms.solution.sets) {
      totals[0] += system.costs(id)[0];
      totals[1] += system.costs(id)[1];
    }
    EXPECT_DOUBLE_EQ(ms.objective_costs[0], totals[0]);
    EXPECT_DOUBLE_EQ(ms.objective_costs[1], totals[1]);
  }
}

TEST(SweepScalarizationsTest, ExtremeLambdasExposeTheTradeoff) {
  MultiWeightSetSystem system = MakeSystem();
  CwscOptions opts;
  opts.k = 1;
  opts.coverage_fraction = 0.5;
  // Weighting only objective 0 picks "cheap-build" (cost {1,10}); weighting
  // only objective 1 picks "cheap-staff" ({10,1}).
  auto front = SweepScalarizations(
      system, opts,
      {*Scalarizer::WeightedSum({1.0, 0.0}),
       *Scalarizer::WeightedSum({0.0, 1.0})});
  ASSERT_TRUE(front.ok());
  ASSERT_EQ(front->size(), 2u);
}

TEST(SweepScalarizationsTest, AllInfeasibleReturnsInfeasible) {
  MultiWeightSetSystem system(10, 1);
  ASSERT_TRUE(system.AddSet({0}, {1.0}).ok());
  CwscOptions opts;
  opts.k = 1;
  opts.coverage_fraction = 1.0;  // impossible: only one singleton set
  auto front =
      SweepScalarizations(system, opts, {*Scalarizer::WeightedSum({1.0})});
  EXPECT_TRUE(front.status().IsInfeasible());
}

TEST(SweepScalarizationsTest, RequiresScalarizers) {
  MultiWeightSetSystem system = MakeSystem();
  EXPECT_TRUE(SweepScalarizations(system, CwscOptions{}, {})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace scwsc
