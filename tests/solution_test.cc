#include "src/core/solution.h"

#include "gtest/gtest.h"

namespace scwsc {
namespace {

SetSystem MakeSystem() {
  SetSystem system(6);
  EXPECT_TRUE(system.AddSet({0, 1, 2}, 3.0, "P1").ok());
  EXPECT_TRUE(system.AddSet({2, 3}, 1.5, "P2").ok());
  EXPECT_TRUE(system.AddSet({4, 5}, 2.0).ok());  // unlabeled
  return system;
}

TEST(AuditSolutionTest, RecomputesCoverageAndCost) {
  SetSystem system = MakeSystem();
  Solution solution;
  solution.sets = {0, 1};
  solution.total_cost = 4.5;
  solution.covered = 4;  // {0,1,2} ∪ {2,3}
  auto audit = AuditSolution(system, solution);
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->num_sets, 2u);
  EXPECT_DOUBLE_EQ(audit->total_cost, 4.5);
  EXPECT_EQ(audit->covered, 4u);
  EXPECT_TRUE(audit->bookkeeping_consistent);
}

TEST(AuditSolutionTest, FlagsInconsistentBookkeeping) {
  SetSystem system = MakeSystem();
  Solution solution;
  solution.sets = {0};
  solution.total_cost = 99.0;  // wrong
  solution.covered = 3;
  auto audit = AuditSolution(system, solution);
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->bookkeeping_consistent);
}

TEST(AuditSolutionTest, RejectsUnknownSetIds) {
  SetSystem system = MakeSystem();
  Solution solution;
  solution.sets = {7};
  EXPECT_TRUE(AuditSolution(system, solution).status().IsInvalidArgument());
}

TEST(AuditSolutionTest, RejectsDuplicateSetIds) {
  SetSystem system = MakeSystem();
  Solution solution;
  solution.sets = {1, 1};
  EXPECT_TRUE(AuditSolution(system, solution).status().IsInvalidArgument());
}

TEST(AuditSolutionTest, EmptySolutionIsConsistent) {
  SetSystem system = MakeSystem();
  Solution solution;
  auto audit = AuditSolution(system, solution);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->bookkeeping_consistent);
  EXPECT_EQ(audit->covered, 0u);
}

TEST(SatisfiesConstraintsTest, ChecksSizeAndCoverage) {
  SetSystem system = MakeSystem();
  Solution solution;
  solution.sets = {0, 1};
  solution.total_cost = 4.5;
  solution.covered = 4;
  EXPECT_TRUE(SatisfiesConstraints(system, solution, 2, 4.0 / 6.0));
  EXPECT_FALSE(SatisfiesConstraints(system, solution, 1, 4.0 / 6.0));  // size
  EXPECT_FALSE(SatisfiesConstraints(system, solution, 2, 0.9));  // coverage
}

TEST(SatisfiesConstraintsTest, InvalidSolutionNeverSatisfies) {
  SetSystem system = MakeSystem();
  Solution solution;
  solution.sets = {42};
  EXPECT_FALSE(SatisfiesConstraints(system, solution, 5, 0.0));
}

TEST(SolutionToStringTest, UsesLabelsWhenPresent) {
  SetSystem system = MakeSystem();
  Solution solution;
  solution.sets = {0, 2};
  solution.total_cost = 5.0;
  solution.covered = 5;
  const std::string str = SolutionToString(system, solution);
  EXPECT_NE(str.find("P1"), std::string::npos);
  EXPECT_NE(str.find("S2"), std::string::npos);  // fallback name
  EXPECT_NE(str.find("cost=5"), std::string::npos);
  EXPECT_NE(str.find("covered=5/6"), std::string::npos);
}

}  // namespace
}  // namespace scwsc
