#include "src/core/cwsc.h"

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/instances.h"
#include "src/core/solution.h"

namespace scwsc {
namespace {

SetSystem MakeSimpleSystem() {
  SetSystem system(10);
  EXPECT_TRUE(system.AddSet({0, 1, 2, 3, 4}, 10.0, "big-cheapish").ok());
  EXPECT_TRUE(system.AddSet({5, 6}, 1.0, "pair").ok());
  EXPECT_TRUE(system.AddSet({7}, 1.0, "single7").ok());
  EXPECT_TRUE(system.AddSet({8}, 1.0, "single8").ok());
  EXPECT_TRUE(system.AddSet({9}, 1.0, "single9").ok());
  EXPECT_TRUE(
      system.AddSet({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 100.0, "universe").ok());
  return system;
}

TEST(CwscTest, RejectsBadOptions) {
  SetSystem system = MakeSimpleSystem();
  EXPECT_TRUE(
      RunCwsc(system, {0, 0.5}).status().IsInvalidArgument());
  EXPECT_TRUE(
      RunCwsc(system, {3, -0.1}).status().IsInvalidArgument());
  EXPECT_TRUE(
      RunCwsc(system, {3, 1.1}).status().IsInvalidArgument());
}

TEST(CwscTest, ZeroCoverageYieldsEmptySolution) {
  SetSystem system = MakeSimpleSystem();
  auto solution = RunCwsc(system, {3, 0.0});
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->sets.empty());
  EXPECT_DOUBLE_EQ(solution->total_cost, 0.0);
}

TEST(CwscTest, MeetsCoverageWithinK) {
  SetSystem system = MakeSimpleSystem();
  for (double fraction : {0.2, 0.5, 0.7, 1.0}) {
    for (std::size_t k : {1u, 2u, 3u, 5u}) {
      auto solution = RunCwsc(system, {k, fraction});
      ASSERT_TRUE(solution.ok())
          << "k=" << k << " s=" << fraction << ": "
          << solution.status().ToString();
      EXPECT_TRUE(SatisfiesConstraints(system, *solution, k, fraction))
          << SolutionToString(system, *solution);
      auto audit = AuditSolution(system, *solution);
      ASSERT_TRUE(audit.ok());
      EXPECT_TRUE(audit->bookkeeping_consistent);
    }
  }
}

TEST(CwscTest, PrefersHighGainQualifiedSets) {
  SetSystem system = MakeSimpleSystem();
  // Target 5/10 elements with k = 1: only the big set or universe qualify
  // (benefit >= 5); the big set has the better gain (5/10 > 10/100).
  auto solution = RunCwsc(system, {1, 0.5});
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->sets.size(), 1u);
  EXPECT_EQ(system.set(solution->sets[0]).label, "big-cheapish");
}

TEST(CwscTest, QualificationThresholdSkipsSmallSets) {
  // With k = 5 and target 5, the first iteration requires benefit >= 1, so
  // greedy-by-gain would pick the cheap singles first; CWSC still finishes
  // within k sets and meets the target.
  SetSystem system = MakeSimpleSystem();
  auto solution = RunCwsc(system, {5, 0.5});
  ASSERT_TRUE(solution.ok());
  EXPECT_LE(solution->sets.size(), 5u);
  EXPECT_GE(solution->covered, 5u);
}

TEST(CwscTest, InfeasibleWithoutQualifiedSets) {
  SetSystem system(10);
  ASSERT_TRUE(system.AddSet({0}, 1.0).ok());
  // Target 5 with k = 1 needs one set of benefit >= 5; none exists.
  auto solution = RunCwsc(system, {1, 0.5});
  EXPECT_TRUE(solution.status().IsInfeasible());
}

TEST(CwscTest, EmptySystemInfeasibleForPositiveTarget) {
  SetSystem system(5);
  EXPECT_TRUE(RunCwsc(system, {2, 0.5}).status().IsInfeasible());
}

TEST(CwscTest, FullCoverageViaUniverseSet) {
  SetSystem system = MakeSimpleSystem();
  auto solution = RunCwsc(system, {1, 1.0});
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->sets.size(), 1u);
  EXPECT_EQ(system.set(solution->sets[0]).label, "universe");
  EXPECT_EQ(solution->covered, 10u);
}

TEST(CwscTest, TieBreaksOnLowerCostThenLowerId) {
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0, 1}, 4.0, "expensive").ok());  // gain 0.5
  ASSERT_TRUE(system.AddSet({2, 3}, 4.0, "same").ok());       // gain 0.5
  ASSERT_TRUE(system.AddSet({0, 1, 2, 3}, 8.0, "all").ok());  // gain 0.5
  // All three have gain 0.5. Tie-break: higher count -> "all".
  auto solution = RunCwsc(system, {2, 0.5});
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(system.set(solution->sets[0]).label, "all");
}

TEST(CwscTest, DeterministicAcrossRuns) {
  Rng rng(99);
  RandomSystemSpec spec;
  spec.num_elements = 60;
  spec.num_sets = 40;
  auto system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());
  auto s1 = RunCwsc(*system, {4, 0.6});
  auto s2 = RunCwsc(*system, {4, 0.6});
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->sets, s2->sets);
}

TEST(CwscTest, RandomInstancesAlwaysSatisfyConstraintsWhenOk) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    RandomSystemSpec spec;
    spec.num_elements = 30 + static_cast<std::size_t>(rng.NextBounded(50));
    spec.num_sets = 10 + static_cast<std::size_t>(rng.NextBounded(60));
    spec.max_set_size = 1 + static_cast<std::size_t>(rng.NextBounded(8));
    auto system = RandomSetSystem(spec, rng);
    ASSERT_TRUE(system.ok());
    const std::size_t k = 1 + static_cast<std::size_t>(rng.NextBounded(8));
    const double fraction = rng.NextDouble(0.0, 1.0);
    auto solution = RunCwsc(*system, {k, fraction});
    if (solution.ok()) {
      EXPECT_TRUE(SatisfiesConstraints(*system, *solution, k, fraction))
          << "trial " << trial << ": "
          << SolutionToString(*system, *solution);
    }
  }
}

}  // namespace
}  // namespace scwsc
