// Shared helpers for the scwsc test suite.

#ifndef SCWSC_TESTS_TEST_UTIL_H_
#define SCWSC_TESTS_TEST_UTIL_H_

#include <cctype>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/pattern/pattern.h"
#include "src/table/table.h"

namespace scwsc {
namespace test {

/// Builds a pattern from decoded value strings; "*" means ALL. Fails the
/// current test when a value is unknown.
inline pattern::Pattern MakePattern(const Table& table,
                                    const std::vector<std::string>& values) {
  EXPECT_EQ(values.size(), table.num_attributes());
  std::vector<ValueId> ids(values.size(), pattern::kAll);
  for (std::size_t a = 0; a < values.size(); ++a) {
    if (values[a] == "*") continue;
    auto found = table.dictionary(a).Find(values[a]);
    EXPECT_TRUE(found.ok()) << "unknown value '" << values[a]
                            << "' in attribute " << a;
    if (found.ok()) ids[a] = *found;
  }
  return pattern::Pattern(std::move(ids));
}

/// Minimal recursive-descent JSON well-formedness checker for the obs
/// exporter tests (the repo has no JSON dependency; CI re-validates the
/// same files with `python -m json.tool`). Accepts exactly one top-level
/// value and rejects trailing garbage.
class JsonChecker {
 public:
  static bool IsValid(const std::string& text) {
    JsonChecker c(text);
    c.SkipWs();
    if (!c.Value()) return false;
    c.SkipWs();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  static bool IsDigit(char c) {
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (IsDigit(Peek())) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!IsDigit(Peek())) return false;
      while (IsDigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!IsDigit(Peek())) return false;
      while (IsDigit(Peek())) ++pos_;
    }
    return pos_ > start && IsDigit(text_[pos_ - 1]);
  }

  bool Literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// gtest-friendly assertion that a Status is OK.
#define SCWSC_ASSERT_OK(expr)                                 \
  do {                                                        \
    const ::scwsc::Status _st = (expr);                       \
    ASSERT_TRUE(_st.ok()) << "status: " << _st.ToString();    \
  } while (false)

#define SCWSC_EXPECT_OK(expr)                                 \
  do {                                                        \
    const ::scwsc::Status _st = (expr);                       \
    EXPECT_TRUE(_st.ok()) << "status: " << _st.ToString();    \
  } while (false)

}  // namespace test
}  // namespace scwsc

#endif  // SCWSC_TESTS_TEST_UTIL_H_
