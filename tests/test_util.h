// Shared helpers for the scwsc test suite.

#ifndef SCWSC_TESTS_TEST_UTIL_H_
#define SCWSC_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/pattern/pattern.h"
#include "src/table/table.h"

namespace scwsc {
namespace test {

/// Builds a pattern from decoded value strings; "*" means ALL. Fails the
/// current test when a value is unknown.
inline pattern::Pattern MakePattern(const Table& table,
                                    const std::vector<std::string>& values) {
  EXPECT_EQ(values.size(), table.num_attributes());
  std::vector<ValueId> ids(values.size(), pattern::kAll);
  for (std::size_t a = 0; a < values.size(); ++a) {
    if (values[a] == "*") continue;
    auto found = table.dictionary(a).Find(values[a]);
    EXPECT_TRUE(found.ok()) << "unknown value '" << values[a]
                            << "' in attribute " << a;
    if (found.ok()) ids[a] = *found;
  }
  return pattern::Pattern(std::move(ids));
}

/// gtest-friendly assertion that a Status is OK.
#define SCWSC_ASSERT_OK(expr)                                 \
  do {                                                        \
    const ::scwsc::Status _st = (expr);                       \
    ASSERT_TRUE(_st.ok()) << "status: " << _st.ToString();    \
  } while (false)

#define SCWSC_EXPECT_OK(expr)                                 \
  do {                                                        \
    const ::scwsc::Status _st = (expr);                       \
    EXPECT_TRUE(_st.ok()) << "status: " << _st.ToString();    \
  } while (false)

}  // namespace test
}  // namespace scwsc

#endif  // SCWSC_TESTS_TEST_UTIL_H_
