#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace scwsc {
namespace {

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7u);
}

TEST(ThreadPoolTest, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, ChunksCoverRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, 8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SmallRangeRunsInlineWithoutChunking) {
  ThreadPool pool(4);
  // n < 2 * min_chunk must run as one inline call over [0, n).
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  pool.ParallelFor(10, 100, [&](std::size_t begin, std::size_t end) {
    calls.emplace_back(begin, end);
  });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<std::size_t, std::size_t>{0, 10}));
}

TEST(ThreadPoolTest, EmptyRangeDoesNothing) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, BackToBackParallelForsReusePool) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(1000, 1, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50'000u);
}

TEST(ThreadPoolTest, ThrowingTaskSurfacesInternalStatus) {
  ThreadPool pool(4);
  const Status status =
      pool.ParallelFor(10'000, 8, [&](std::size_t begin, std::size_t) {
        if (begin == 0) throw std::runtime_error("task exploded");
      });
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.ToString().find("task exploded"), std::string::npos);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotAbortOtherChunks) {
  ThreadPool pool(4);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  const Status status =
      pool.ParallelFor(n, 8, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
        if (begin == 0) throw std::runtime_error("late failure");
      });
  EXPECT_TRUE(status.IsInternal());
  // Every chunk still ran exactly once: a failed batch must not leave the
  // remaining chunks half-scheduled.
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolStaysUsableAfterThrowingBatch) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    const Status failed = pool.ParallelFor(
        1000, 1, [&](std::size_t, std::size_t) { throw 42; });  // non-std too
    EXPECT_TRUE(failed.IsInternal());
    std::atomic<std::size_t> total{0};
    const Status ok =
        pool.ParallelFor(1000, 1, [&](std::size_t begin, std::size_t end) {
          total.fetch_add(end - begin, std::memory_order_relaxed);
        });
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(total.load(), 1000u);
  }
}

TEST(ThreadPoolTest, InlinePathCapturesExceptionsToo) {
  ThreadPool pool(1);
  const Status status = pool.ParallelFor(
      100, 1, [&](std::size_t, std::size_t) {
        throw std::runtime_error("inline failure");
      });
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.ToString().find("inline failure"), std::string::npos);
}

TEST(ThreadPoolTest, DeterministicChunkBoundaries) {
  // Chunk boundaries depend only on (n, min_chunk, size) — record and
  // compare across two identical pools.
  auto boundaries = [](ThreadPool& pool) {
    std::vector<std::pair<std::size_t, std::size_t>> calls;
    std::mutex mu;
    pool.ParallelFor(5000, 16, [&](std::size_t begin, std::size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      calls.emplace_back(begin, end);
    });
    std::sort(calls.begin(), calls.end());
    return calls;
  };
  ThreadPool a(4), b(4);
  auto ca = boundaries(a);
  auto cb = boundaries(b);
  EXPECT_EQ(ca, cb);
  // And the chunks tile [0, 5000) without gaps or overlap.
  std::size_t cursor = 0;
  for (const auto& [begin, end] : ca) {
    EXPECT_EQ(begin, cursor);
    EXPECT_LT(begin, end);
    cursor = end;
  }
  EXPECT_EQ(cursor, 5000u);
}

}  // namespace
}  // namespace scwsc
