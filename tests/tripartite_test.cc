// Validates the Lemma 1 reduction structurally and extensionally: the
// smallest collection of cost-<=tau patterns covering the m edge records
// equals the minimum vertex cover of the generated tripartite graph.

#include "src/gen/tripartite.h"

#include <map>
#include <set>

#include "gtest/gtest.h"
#include "src/core/exact.h"
#include "src/pattern/pattern_system.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using gen::MakeTripartiteReduction;
using gen::TripartiteInstance;
using gen::TripartiteSpec;

/// Brute-force minimum vertex cover over the instance's edge list.
std::size_t MinVertexCover(const TripartiteInstance& instance) {
  std::vector<std::string> vertices;
  std::map<std::string, std::size_t> index;
  for (const auto& e : instance.edges) {
    for (const auto& v : {e.u, e.v}) {
      if (!index.count(v)) {
        index[v] = vertices.size();
        vertices.push_back(v);
      }
    }
  }
  const std::size_t v = vertices.size();
  EXPECT_LE(v, 20u) << "brute force limited to small graphs";
  std::size_t best = v;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << v); ++mask) {
    const auto count = static_cast<std::size_t>(__builtin_popcountll(mask));
    if (count >= best) continue;
    bool covers = true;
    for (const auto& e : instance.edges) {
      if (!((mask >> index[e.u]) & 1) && !((mask >> index[e.v]) & 1)) {
        covers = false;
        break;
      }
    }
    if (covers) best = count;
  }
  return best;
}

TEST(TripartiteTest, BuildsOneRecordPerEdgePlusSentinel) {
  TripartiteSpec spec;
  spec.seed = 5;
  auto instance = MakeTripartiteReduction(spec);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(instance->table.num_rows(), instance->edges.size() + 1);
  EXPECT_NEAR(instance->coverage_fraction,
              double(instance->edges.size()) /
                  double(instance->edges.size() + 1),
              1e-12);
  // The sentinel record is the only one with the big weight.
  std::size_t big = 0;
  for (RowId r = 0; r < instance->table.num_rows(); ++r) {
    if (instance->table.measure(r) > spec.tau) ++big;
  }
  EXPECT_EQ(big, 1u);
}

TEST(TripartiteTest, CheapPatternsAreDominatedBySingleVertexPatterns) {
  // The proof's replacement argument: every pattern of cost <= tau is
  // coverage-contained in some single-vertex pattern of cost <= tau.
  TripartiteSpec spec;
  spec.seed = 7;
  auto instance = MakeTripartiteReduction(spec);
  ASSERT_TRUE(instance.ok());
  const Table& table = instance->table;
  auto system = pattern::PatternSystem::Build(
      table, pattern::CostFunction(pattern::CostKind::kMax));
  ASSERT_TRUE(system.ok());

  // Collect the single-vertex patterns' benefit sets (exactly one constant
  // attribute whose value is a graph vertex, i.e. not in {x, y, z}).
  std::vector<const std::vector<ElementId>*> vertex_covers;
  for (SetId id = 0; id < system->num_patterns(); ++id) {
    const auto& p = system->pattern(id);
    if (p.num_constants() != 1) continue;
    bool is_vertex = false;
    for (std::size_t a = 0; a < 3; ++a) {
      if (p.is_wildcard(a)) continue;
      const std::string& name = table.dictionary(a).Name(p.value(a));
      is_vertex = name != "x" && name != "y" && name != "z";
    }
    if (is_vertex && system->set_system().set(id).cost <= spec.tau) {
      vertex_covers.push_back(&system->set_system().set(id).elements);
    }
  }
  ASSERT_FALSE(vertex_covers.empty());

  for (SetId id = 0; id < system->num_patterns(); ++id) {
    const auto& s = system->set_system().set(id);
    if (s.cost > spec.tau) continue;
    bool dominated = false;
    for (const auto* cover : vertex_covers) {
      dominated = std::includes(cover->begin(), cover->end(),
                                s.elements.begin(), s.elements.end());
      if (dominated) break;
    }
    EXPECT_TRUE(dominated) << system->pattern(id).ToString(table);
  }
}

TEST(TripartiteTest, SentinelRecordIsUncoverableCheaply) {
  TripartiteSpec spec;
  spec.seed = 11;
  auto instance = MakeTripartiteReduction(spec);
  ASSERT_TRUE(instance.ok());
  const Table& table = instance->table;
  auto system = pattern::PatternSystem::Build(
      table, pattern::CostFunction(pattern::CostKind::kMax));
  ASSERT_TRUE(system.ok());
  const RowId sentinel = static_cast<RowId>(table.num_rows() - 1);
  for (SetId id = 0; id < system->num_patterns(); ++id) {
    const auto& s = system->set_system().set(id);
    const bool covers_sentinel =
        std::binary_search(s.elements.begin(), s.elements.end(),
                           static_cast<ElementId>(sentinel));
    if (covers_sentinel) {
      EXPECT_GT(s.cost, spec.tau)
          << system->pattern(id).ToString(table);
    }
  }
}

class TripartiteReductionTest : public ::testing::TestWithParam<int> {};

TEST_P(TripartiteReductionTest, MinPatternsEqualsMinVertexCover) {
  TripartiteSpec spec;
  spec.a_size = 3;
  spec.b_size = 3;
  spec.c_size = 3;
  spec.edge_probability = 0.5;
  spec.seed = static_cast<std::uint64_t>(GetParam());
  auto instance = MakeTripartiteReduction(spec);
  if (!instance.ok()) GTEST_SKIP() << "empty random graph";

  const Table& table = instance->table;
  auto system = pattern::PatternSystem::Build(
      table, pattern::CostFunction(pattern::CostKind::kMax));
  ASSERT_TRUE(system.ok());

  // Lemma 1 asks for the smallest number of cost-<=tau patterns: rebuild
  // the system with unit costs on allowed patterns and a prohibitive cost
  // otherwise, so the exact solver's optimal cost equals the count.
  const double kForbidden = 1000.0;
  SetSystem unit(system->set_system().num_elements());
  for (SetId id = 0; id < system->num_patterns(); ++id) {
    const auto& s = system->set_system().set(id);
    ASSERT_TRUE(
        unit.AddSet(s.elements, s.cost <= spec.tau ? 1.0 : kForbidden).ok());
  }

  ExactOptions opts;
  opts.k = instance->edges.size();  // size bound not binding
  opts.coverage_fraction = instance->coverage_fraction;
  auto exact = SolveExact(unit, opts);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ASSERT_LT(exact->solution.total_cost, kForbidden);  // no forbidden pattern

  EXPECT_DOUBLE_EQ(exact->solution.total_cost,
                   static_cast<double>(MinVertexCover(*instance)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripartiteReductionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace scwsc
