// Cross-validation of the tuned greedy engines against the literal Fig. 1 /
// Fig. 2 pseudocode: with identical tie-breaking, selections must be
// identical on every instance.

#include "src/core/literal.h"

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/instances.h"
#include "src/gen/toy.h"
#include "src/pattern/pattern_system.h"

namespace scwsc {
namespace {

void ExpectSameSolution(const Result<Solution>& a, const Result<Solution>& b,
                        const std::string& context) {
  ASSERT_EQ(a.ok(), b.ok()) << context << ": " << a.status().ToString()
                            << " vs " << b.status().ToString();
  if (!a.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code()) << context;
    return;
  }
  EXPECT_EQ(a->sets, b->sets) << context;
  EXPECT_NEAR(a->total_cost, b->total_cost, 1e-9) << context;
  EXPECT_EQ(a->covered, b->covered) << context;
}

TEST(LiteralCwscTest, MatchesTunedEngineOnRandomSystems) {
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    RandomSystemSpec spec;
    spec.num_elements = 20 + static_cast<std::size_t>(rng.NextBounded(80));
    spec.num_sets = 10 + static_cast<std::size_t>(rng.NextBounded(90));
    spec.max_set_size = 1 + static_cast<std::size_t>(rng.NextBounded(9));
    spec.duplicate_cost_probability = trial % 2 == 0 ? 0.5 : 0.0;
    spec.ensure_universe = trial % 3 != 0;
    auto system = RandomSetSystem(spec, rng);
    ASSERT_TRUE(system.ok());
    const std::size_t k = 1 + static_cast<std::size_t>(rng.NextBounded(8));
    const double fraction = rng.NextDouble(0.0, 1.0);
    CwscOptions opts{k, fraction};
    ExpectSameSolution(RunCwscLiteral(*system, opts), RunCwsc(*system, opts),
                       "trial " + std::to_string(trial));
  }
}

TEST(LiteralCmcTest, MatchesTunedEngineOnRandomSystems) {
  Rng rng(777);
  for (int trial = 0; trial < 30; ++trial) {
    RandomSystemSpec spec;
    spec.num_elements = 20 + static_cast<std::size_t>(rng.NextBounded(60));
    spec.num_sets = 10 + static_cast<std::size_t>(rng.NextBounded(70));
    spec.max_set_size = 1 + static_cast<std::size_t>(rng.NextBounded(8));
    spec.duplicate_cost_probability = trial % 2 == 0 ? 0.4 : 0.0;
    auto system = RandomSetSystem(spec, rng);
    ASSERT_TRUE(system.ok());
    CmcOptions opts;
    opts.k = 1 + static_cast<std::size_t>(rng.NextBounded(6));
    opts.coverage_fraction = rng.NextDouble(0.1, 1.0);
    opts.b = trial % 2 == 0 ? 1.0 : 0.5;
    opts.epsilon = trial % 3 == 0 ? 1.0 : 0.0;
    opts.relax_coverage = trial % 4 != 0;

    auto literal = RunCmcLiteral(*system, opts);
    auto tuned = RunCmc(*system, opts);
    ASSERT_EQ(literal.ok(), tuned.ok())
        << "trial " << trial << ": " << literal.status().ToString() << " vs "
        << tuned.status().ToString();
    if (!literal.ok()) continue;
    EXPECT_EQ(literal->solution.sets, tuned->solution.sets)
        << "trial " << trial;
    EXPECT_NEAR(literal->solution.total_cost, tuned->solution.total_cost,
                1e-9);
    EXPECT_EQ(literal->budget_rounds, tuned->budget_rounds);
    EXPECT_DOUBLE_EQ(literal->final_budget, tuned->final_budget);
    EXPECT_EQ(literal->sets_considered, tuned->sets_considered);
  }
}

TEST(LiteralTest, PaperWalkthroughsAgree) {
  Table table = gen::MakeEntitiesTable();
  auto system = pattern::PatternSystem::Build(
      table, pattern::CostFunction(pattern::CostKind::kMax));
  ASSERT_TRUE(system.ok());

  CwscOptions cwsc_opts{2, 9.0 / 16.0};
  ExpectSameSolution(RunCwscLiteral(system->set_system(), cwsc_opts),
                     RunCwsc(system->set_system(), cwsc_opts), "toy CWSC");

  CmcOptions cmc_opts;
  cmc_opts.k = 2;
  cmc_opts.coverage_fraction = 9.0 / 16.0;
  cmc_opts.relax_coverage = false;
  auto literal = RunCmcLiteral(system->set_system(), cmc_opts);
  auto tuned = RunCmc(system->set_system(), cmc_opts);
  ASSERT_TRUE(literal.ok());
  ASSERT_TRUE(tuned.ok());
  EXPECT_EQ(literal->solution.sets, tuned->solution.sets);
  EXPECT_DOUBLE_EQ(literal->final_budget, 20.0);
  EXPECT_EQ(literal->budget_rounds, 3u);
}

TEST(LiteralTest, RejectsBadOptionsLikeTunedEngines) {
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0, 1, 2, 3}, 1.0).ok());
  EXPECT_TRUE(RunCwscLiteral(system, {0, 0.5}).status().IsInvalidArgument());
  CmcOptions opts;
  opts.b = -1.0;
  EXPECT_TRUE(RunCmcLiteral(system, opts).status().IsInvalidArgument());
}

}  // namespace
}  // namespace scwsc
