#include "src/common/run_context.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/solution.h"

namespace scwsc {
namespace {

TEST(RunContextTest, DefaultIsUnlimited) {
  RunContext ctx;
  EXPECT_FALSE(ctx.limited());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ctx.Check(), TripKind::kNone);
    EXPECT_EQ(ctx.ChargeRecounts(1'000'000), TripKind::kNone);
    EXPECT_EQ(ctx.ChargeNodes(1'000'000), TripKind::kNone);
  }
  EXPECT_EQ(ctx.tripped(), TripKind::kNone);
}

TEST(RunContextTest, SharedUnlimitedNeverTrips) {
  const RunContext& ctx = RunContext::Unlimited();
  EXPECT_FALSE(ctx.limited());
  EXPECT_EQ(ctx.Check(), TripKind::kNone);
}

TEST(RunContextTest, ZeroDeadlineTripsImmediately) {
  RunContext ctx;
  ctx.SetDeadline(std::chrono::milliseconds(0));
  EXPECT_TRUE(ctx.limited());
  EXPECT_EQ(ctx.Check(), TripKind::kDeadline);
  EXPECT_EQ(ctx.tripped(), TripKind::kDeadline);
}

TEST(RunContextTest, FutureDeadlineDoesNotTripEarly) {
  RunContext ctx;
  ctx.SetDeadline(std::chrono::hours(24));
  EXPECT_EQ(ctx.Check(), TripKind::kNone);
  EXPECT_EQ(ctx.tripped(), TripKind::kNone);
}

TEST(RunContextTest, PassedDeadlineTrips) {
  RunContext ctx;
  ctx.SetDeadlineAt(RunContext::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_EQ(ctx.Check(), TripKind::kDeadline);
}

TEST(RunContextTest, CancelTripsAndIsSticky) {
  RunContext ctx;
  EXPECT_EQ(ctx.Check(), TripKind::kNone);
  ctx.RequestCancel();
  EXPECT_EQ(ctx.Check(), TripKind::kCancel);
  // Sticky: later sources cannot overwrite the first trip.
  ctx.SetDeadline(std::chrono::milliseconds(0));
  EXPECT_EQ(ctx.Check(), TripKind::kCancel);
  EXPECT_EQ(ctx.ChargeNodes(1), TripKind::kCancel);
  EXPECT_EQ(ctx.tripped(), TripKind::kCancel);
}

TEST(RunContextTest, RecountBudgetAllowsExactlyTheBudget) {
  RunContext ctx;
  ctx.SetRecountBudget(5);
  EXPECT_EQ(ctx.ChargeRecounts(3), TripKind::kNone);
  EXPECT_EQ(ctx.ChargeRecounts(2), TripKind::kNone);  // exactly exhausted
  EXPECT_EQ(ctx.ChargeRecounts(1), TripKind::kBudget);
  EXPECT_EQ(ctx.tripped(), TripKind::kBudget);
}

TEST(RunContextTest, OversizedChargeTripsAtOnce) {
  RunContext ctx;
  ctx.SetRecountBudget(5);
  EXPECT_EQ(ctx.ChargeRecounts(6), TripKind::kBudget);
}

TEST(RunContextTest, NodeBudgetOfOneAllowsOneExpansion) {
  RunContext ctx;
  ctx.SetNodeBudget(1);
  EXPECT_EQ(ctx.ChargeNodes(1), TripKind::kNone);
  EXPECT_EQ(ctx.ChargeNodes(1), TripKind::kBudget);
}

TEST(RunContextTest, BudgetsAreIndependent) {
  RunContext ctx;
  ctx.SetRecountBudget(2);
  // Node charges draw nothing from the recount budget.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ctx.ChargeNodes(100), TripKind::kNone);
  }
  EXPECT_EQ(ctx.ChargeRecounts(2), TripKind::kNone);
  EXPECT_EQ(ctx.ChargeRecounts(1), TripKind::kBudget);
}

TEST(RunContextTest, FailAfterZeroTripsFirstCheck) {
  RunContext ctx;
  ctx.FailAfter(0);
  EXPECT_EQ(ctx.Check(), TripKind::kCancel);
}

TEST(RunContextTest, FailAfterNTripsTheNPlusFirstCheck) {
  RunContext ctx;
  ctx.FailAfter(3);
  EXPECT_EQ(ctx.Check(), TripKind::kNone);
  EXPECT_EQ(ctx.Check(), TripKind::kNone);
  EXPECT_EQ(ctx.Check(), TripKind::kNone);
  EXPECT_EQ(ctx.Check(), TripKind::kCancel);
  EXPECT_EQ(ctx.Check(), TripKind::kCancel);  // sticky
}

TEST(RunContextTest, FailWithProbabilityIsDeterministicPerSeed) {
  auto trip_index = [](std::uint64_t seed) {
    RunContext ctx;
    ctx.FailWithProbability(0.125, seed);
    for (int i = 0; i < 10'000; ++i) {
      if (ctx.Check() != TripKind::kNone) return i;
    }
    return -1;
  };
  const int first = trip_index(42);
  EXPECT_GE(first, 0);  // p = 1/8 over 10k checks: virtually certain
  EXPECT_EQ(first, trip_index(42));
  // probability 1 trips at once; probability 0 never does.
  RunContext always;
  always.FailWithProbability(1.0, 7);
  EXPECT_EQ(always.Check(), TripKind::kCancel);
  RunContext never;
  never.FailWithProbability(0.0, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(never.Check(), TripKind::kNone);
  }
}

TEST(RunContextTest, ConcurrentTripsConvergeOnOneKind) {
  // Many threads racing cancel against a zero node budget must all observe
  // the same sticky winner.
  RunContext ctx;
  ctx.SetNodeBudget(0);
  std::atomic<int> deadline_count{0};
  std::vector<std::thread> threads;
  std::vector<TripKind> seen(8, TripKind::kNone);
  for (std::size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) ctx.RequestCancel();
      TripKind k = ctx.ChargeNodes(1);
      for (int i = 0; i < 100; ++i) {
        const TripKind again = ctx.Check();
        if (again != k) deadline_count.fetch_add(1);
      }
      seen[t] = k;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(deadline_count.load(), 0);
  for (std::size_t t = 1; t < seen.size(); ++t) {
    EXPECT_EQ(seen[t], seen[0]);
  }
  EXPECT_NE(ctx.tripped(), TripKind::kNone);
}

TEST(RunContextTest, TripStatusMapsKindsToCodes) {
  EXPECT_TRUE(TripStatus(TripKind::kDeadline, "op").IsDeadlineExceeded());
  EXPECT_TRUE(TripStatus(TripKind::kCancel, "op").IsCancelled());
  EXPECT_TRUE(TripStatus(TripKind::kBudget, "op").IsResourceExhausted());
  for (TripKind kind :
       {TripKind::kDeadline, TripKind::kCancel, TripKind::kBudget}) {
    EXPECT_TRUE(TripStatus(kind, "op").IsInterruption());
  }
}

TEST(RunContextTest, TripKindNames) {
  EXPECT_STREQ(TripKindToString(TripKind::kNone), "none");
  EXPECT_STREQ(TripKindToString(TripKind::kDeadline), "deadline");
  EXPECT_STREQ(TripKindToString(TripKind::kCancel), "cancel");
  EXPECT_STREQ(TripKindToString(TripKind::kBudget), "budget");
}

TEST(RunContextTest, StatusPayloadRoundTrips) {
  Solution partial;
  partial.sets = {3, 1, 4};
  partial.total_cost = 2.5;
  partial.covered = 7;
  const Status status =
      TripStatus(TripKind::kDeadline, "test").WithPayload(partial);
  ASSERT_FALSE(status.ok());
  const Solution* back = status.payload<Solution>();
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->sets, partial.sets);
  EXPECT_EQ(back->total_cost, 2.5);
  EXPECT_EQ(back->covered, 7u);
  // Wrong type or no payload yields nullptr, never UB.
  EXPECT_EQ(status.payload<int>(), nullptr);
  EXPECT_EQ(Status::Cancelled("bare").payload<Solution>(), nullptr);
}

TEST(RunContextTest, InterruptedStatusStampsProvenance) {
  Solution partial;
  partial.sets = {2, 5};
  partial.total_cost = 9.0;
  partial.covered = 11;
  const Status status =
      InterruptedStatus(TripKind::kBudget, "solver", partial, 3.5);
  EXPECT_TRUE(status.IsResourceExhausted());
  const Solution* back = status.payload<Solution>();
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->provenance.trip, TripKind::kBudget);
  EXPECT_EQ(back->provenance.sets_chosen, 2u);
  EXPECT_EQ(back->provenance.coverage_reached, 11u);
  EXPECT_EQ(back->provenance.budget_level, 3.5);
  EXPECT_TRUE(back->provenance.interrupted());
}

}  // namespace
}  // namespace scwsc
