// The socket front end: a real client over loopback speaking the v2 wire
// protocol — ping, list_solvers, solve (with tenant and forward-echo),
// delta advancing the live snapshot, typed errors for malformed requests —
// plus the SnapshotStore's head semantics.

#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/api/delta.h"
#include "src/api/instance.h"
#include "src/common/thread_pool.h"
#include "src/core/set_system.h"
#include "src/serve/json.h"
#include "src/serve/scheduler.h"
#include "src/serve/wire.h"

namespace scwsc {
namespace {

using api::InstancePtr;
using serve::JsonValue;
using serve::SnapshotStore;
using serve::SolveScheduler;
using serve::SolveServer;

InstancePtr BlockInstance() {
  SetSystem system(512);
  for (std::size_t block = 0; block < 8; ++block) {
    std::vector<ElementId> elements;
    for (std::size_t e = block * 64; e < (block + 1) * 64; ++e) {
      elements.push_back(static_cast<ElementId>(e));
    }
    EXPECT_TRUE(system
                    .AddSet(std::move(elements),
                            1.0 + 0.1 * static_cast<double>(block),
                            "block-" + std::to_string(block))
                    .ok());
  }
  ShardingOptions sharding;
  sharding.num_shards = 4;
  sharding.min_shard_elements = 64;
  auto instance =
      api::InstanceSnapshot::FromSetSystem(std::move(system), sharding);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return *instance;
}

/// A blocking loopback client: connect, send request lines, read response
/// lines. The server is non-blocking; the client does not need to be.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& line) {
    const std::string body = line + "\n";
    ASSERT_EQ(::send(fd_, body.data(), body.size(), 0),
              static_cast<ssize_t>(body.size()));
  }

  /// Reads one newline-terminated response and parses it.
  JsonValue ReadResponse() {
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      EXPECT_GT(got, 0) << "connection closed mid-response";
      if (got <= 0) return JsonValue();
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
    const std::size_t newline = buffer_.find('\n');
    const std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    auto parsed = serve::ParseJson(line);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << ": " << line;
    return parsed.ok() ? *parsed : JsonValue();
  }

  /// Round trip: send, read the (single) response.
  JsonValue Call(const std::string& line) {
    Send(line);
    return ReadResponse();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct ServerFixture {
  ServerFixture()
      : pool(2),
        scheduler(&pool),
        store(&scheduler.snapshot_cache()),
        server(&scheduler, &store) {
    EXPECT_TRUE(store.Put("live", BlockInstance()).ok());
    EXPECT_TRUE(server.Start().ok());
    EXPECT_GT(server.port(), 0);
  }

  ThreadPool pool;
  SolveScheduler scheduler;
  SnapshotStore store;
  SolveServer server;
};

double NumberAt(const JsonValue& root, const char* key) {
  const JsonValue* v = root.Find(key);
  EXPECT_NE(v, nullptr) << key;
  return v != nullptr && v->is_number() ? v->as_number() : -1.0;
}

TEST(SnapshotStoreTest, HeadsAdvanceAndOldVersionsStayUsable) {
  SnapshotStore store;
  EXPECT_EQ(store.Get("live").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Put("", BlockInstance()).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(store.Put("live", BlockInstance()).ok());
  auto v0 = store.Get("live");
  ASSERT_TRUE(v0.ok());

  api::SnapshotDelta delta;
  api::SnapshotDelta::SetAdd add;
  add.elements = {500};
  add.cost = 0.5;
  add.label = "extra";
  delta.add_sets.push_back(std::move(add));
  auto applied = store.Apply("live", delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->stats.child_version, 1u);

  auto v1 = store.Get("live");
  ASSERT_TRUE(v1.ok());
  EXPECT_NE((*v0)->content_hash(), (*v1)->content_hash());
  EXPECT_EQ((*v0)->delta_version(), 0u);  // the old version is untouched
  EXPECT_EQ(store.Apply("absent", delta).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.Names(), std::vector<std::string>{"live"});
}

TEST(ServerTest, PingAndListSolvers) {
  ServerFixture fx;
  Client client(fx.server.port());

  JsonValue pong = client.Call(
      R"({"version": 2, "id": "p1", "type": "ping"})");
  EXPECT_EQ(NumberAt(pong, "version"), 2.0);
  ASSERT_NE(pong.Find("id"), nullptr);
  EXPECT_EQ(pong.Find("id")->as_string(), "p1");
  ASSERT_NE(pong.Find("ok"), nullptr);
  EXPECT_TRUE(pong.Find("ok")->as_bool());

  JsonValue solvers = client.Call(
      R"({"version": 2, "id": "p2", "type": "list_solvers"})");
  ASSERT_NE(solvers.Find("result"), nullptr);
  const JsonValue* list = solvers.Find("result")->Find("solvers");
  ASSERT_NE(list, nullptr);
  EXPECT_GT(list->as_array().size(), 3u);
  // Every entry carries its OptionsSpec table.
  for (const JsonValue& entry : list->as_array()) {
    EXPECT_NE(entry.Find("name"), nullptr);
    EXPECT_NE(entry.Find("options"), nullptr);
  }
}

TEST(ServerTest, SolveOverTheWireWithTenantAndForwardEcho) {
  ServerFixture fx;
  Client client(fx.server.port());

  JsonValue response = client.Call(
      R"({"version": 2, "id": "s1", "type": "solve", "snapshot": "live",)"
      R"( "solver": "greedy-wsc", "k": 4, "coverage": 0.5,)"
      R"( "tenant": "acme", "future_hint": {"x": 1}})");
  ASSERT_NE(response.Find("ok"), nullptr);
  EXPECT_TRUE(response.Find("ok")->as_bool())
      << response.Dump();
  EXPECT_EQ(response.Find("id")->as_string(), "s1");
  // The unknown key round-trips under "forward".
  ASSERT_NE(response.Find("forward"), nullptr);
  EXPECT_NE(response.Find("forward")->Find("future_hint"), nullptr);
  const JsonValue* result = response.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(NumberAt(*result, "num_sets"), 0.0);
  EXPECT_GT(NumberAt(*result, "covered"), 0.0);
  // The tenant-scoped completion counter moved.
  EXPECT_GE(fx.scheduler.metrics().CounterValue("serve.tenant.acme.completed"),
            1u);
}

TEST(ServerTest, DeltaAdvancesTheLiveSnapshotAndSharesShards) {
  ServerFixture fx;
  Client client(fx.server.port());

  JsonValue response = client.Call(
      R"({"version": 2, "id": "d1", "type": "delta", "snapshot": "live",)"
      R"( "add_sets": [{"elements": [500, 501], "cost": 0.5,)"
      R"( "label": "hot"}]})");
  ASSERT_NE(response.Find("ok"), nullptr);
  EXPECT_TRUE(response.Find("ok")->as_bool()) << response.Dump();
  const JsonValue* result = response.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(NumberAt(*result, "child_version"), 1.0);
  EXPECT_EQ(NumberAt(*result, "shards_chained"), 3.0);
  EXPECT_EQ(NumberAt(*result, "shards_rehashed"), 1.0);
  ASSERT_NE(result->Find("content_hash"), nullptr);
  EXPECT_EQ(result->Find("content_hash")->as_string().substr(0, 2), "0x");
  // Publishing parent then child through the cache counts shared shards.
  EXPECT_GE(fx.scheduler.metrics().CounterValue(
                "serve.snapshot_cache.shard_shared"),
            3u);

  // A solve against the advanced head sees the new set.
  JsonValue solve = client.Call(
      R"({"version": 2, "id": "d2", "type": "solve", "snapshot": "live",)"
      R"( "solver": "greedy-wsc", "k": 8, "coverage": 0.9})");
  EXPECT_TRUE(solve.Find("ok")->as_bool()) << solve.Dump();
}

TEST(ServerTest, TypedErrorsForBadRequests) {
  ServerFixture fx;
  Client client(fx.server.port());

  // Malformed JSON.
  JsonValue bad = client.Call("{nope");
  EXPECT_FALSE(bad.Find("ok")->as_bool());
  ASSERT_NE(bad.Find("error"), nullptr);
  EXPECT_EQ(bad.Find("error")->Find("code")->as_string(), "InvalidArgument");

  // Unknown snapshot: typed NotFound, not retryable.
  JsonValue missing = client.Call(
      R"({"version": 2, "id": "e1", "type": "solve",)"
      R"( "snapshot": "absent", "solver": "greedy-wsc"})");
  EXPECT_FALSE(missing.Find("ok")->as_bool());
  EXPECT_EQ(missing.Find("error")->Find("code")->as_string(), "NotFound");
  EXPECT_FALSE(missing.Find("error")->Find("retryable")->as_bool());
  EXPECT_EQ(missing.Find("id")->as_string(), "e1");

  // Unsupported version: typed InvalidArgument naming the supported ones.
  JsonValue future = client.Call(R"({"version": 9, "type": "ping"})");
  EXPECT_FALSE(future.Find("ok")->as_bool());

  // Unknown type.
  JsonValue unknown = client.Call(
      R"({"version": 2, "type": "teleport", "snapshot": "live"})");
  EXPECT_FALSE(unknown.Find("ok")->as_bool());

  // The connection survives all of the above.
  JsonValue pong = client.Call(R"({"version": 2, "type": "ping"})");
  EXPECT_TRUE(pong.Find("ok")->as_bool());
}

TEST(ServerTest, V1PayloadIsAcceptedAsLegacySolve) {
  ServerFixture fx;
  Client client(fx.server.port());
  // A bare versionless solve-shaped object: the v1 form (warn-once fires
  // at most once per process; not asserted here).
  JsonValue response = client.Call(
      R"({"snapshot": "live", "solver": "greedy-wsc", "k": 4,)"
      R"( "coverage": 0.5, "mystery": true})");
  ASSERT_NE(response.Find("ok"), nullptr);
  EXPECT_TRUE(response.Find("ok")->as_bool()) << response.Dump();
  // v1 ignores unknown keys instead of forwarding them.
  EXPECT_EQ(response.Find("forward"), nullptr);
}

TEST(ServerTest, PipelinedRequestsAllComplete) {
  ServerFixture fx;
  Client client(fx.server.port());
  const int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    client.Send(
        R"({"version": 2, "id": "b)" + std::to_string(i) +
        R"(", "type": "solve", "snapshot": "live",)"
        R"( "solver": "greedy-wsc", "k": 4, "coverage": 0.5})");
  }
  int ok = 0;
  for (int i = 0; i < kRequests; ++i) {
    JsonValue response = client.ReadResponse();
    if (response.Find("ok") != nullptr && response.Find("ok")->as_bool()) {
      ++ok;
    }
  }
  EXPECT_EQ(ok, kRequests);
}

TEST(ServerTest, StopIsIdempotentAndRestartable) {
  ServerFixture fx;
  fx.server.Stop();
  fx.server.Stop();
  EXPECT_EQ(fx.server.port(), 0);
  ASSERT_TRUE(fx.server.Start().ok());
  EXPECT_GT(fx.server.port(), 0);
  Client client(fx.server.port());
  EXPECT_TRUE(client.Call(R"({"version": 2, "type": "ping"})")
                  .Find("ok")
                  ->as_bool());
}

}  // namespace
}  // namespace scwsc
