#include "src/pattern/opt_cwsc.h"

#include "src/common/bitset.h"
#include "src/table/builder.h"

#include "gtest/gtest.h"
#include "src/core/cwsc.h"
#include "src/gen/lbl_synth.h"
#include "src/gen/toy.h"
#include "src/pattern/pattern_system.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using pattern::CostFunction;
using pattern::CostKind;
using pattern::PatternStats;
using pattern::PatternSystem;
using pattern::RunOptimizedCwsc;

TEST(OptCwscTest, RejectsBadOptions) {
  Table table = gen::MakeEntitiesTable();
  CostFunction cost(CostKind::kMax);
  EXPECT_TRUE(
      RunOptimizedCwsc(table, cost, {0, 0.5}).status().IsInvalidArgument());
  EXPECT_TRUE(
      RunOptimizedCwsc(table, cost, {2, 1.5}).status().IsInvalidArgument());
}

TEST(OptCwscTest, RequiresMeasureColumn) {
  TableBuilder builder({"x"});
  SCWSC_ASSERT_OK(builder.AddRow({"a"}));
  Table table = std::move(builder).Build();
  EXPECT_TRUE(RunOptimizedCwsc(table, CostFunction(CostKind::kMax), {1, 0.5})
                  .status()
                  .IsInvalidArgument());
}

TEST(OptCwscTest, ZeroTargetIsEmpty) {
  Table table = gen::MakeEntitiesTable();
  auto solution =
      RunOptimizedCwsc(table, CostFunction(CostKind::kMax), {2, 0.0});
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->patterns.empty());
}

TEST(OptCwscTest, AlwaysFeasibleOnPatternedData) {
  // The all-wildcards pattern guarantees feasibility for every (k, ŝ).
  Table table = gen::MakeEntitiesTable();
  CostFunction cost(CostKind::kMax);
  for (std::size_t k : {1u, 2u, 4u, 10u}) {
    for (double s : {0.1, 0.5, 0.9, 1.0}) {
      auto solution = RunOptimizedCwsc(table, cost, {k, s});
      ASSERT_TRUE(solution.ok())
          << "k=" << k << " s=" << s << ": " << solution.status().ToString();
      EXPECT_LE(solution->patterns.size(), k);
      EXPECT_GE(solution->covered,
                SetSystem::CoverageTarget(s, table.num_rows()));
    }
  }
}

TEST(OptCwscTest, KOneFallsBackToBestSinglePattern) {
  Table table = gen::MakeEntitiesTable();
  auto solution =
      RunOptimizedCwsc(table, CostFunction(CostKind::kMax), {1, 1.0});
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->patterns.size(), 1u);
  EXPECT_EQ(solution->patterns[0], pattern::Pattern::AllWildcards(2));
  EXPECT_EQ(solution->covered, 16u);
}

TEST(OptCwscTest, SolutionCostsMatchRecomputation) {
  Table table = gen::MakeEntitiesTable();
  CostFunction cost(CostKind::kMax);
  auto solution = RunOptimizedCwsc(table, cost, {3, 0.7});
  ASSERT_TRUE(solution.ok());
  double recomputed = 0.0;
  DynamicBitset covered(table.num_rows());
  for (const auto& p : solution->patterns) {
    std::vector<RowId> ben;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      if (p.Matches(table, r)) {
        ben.push_back(r);
        covered.set(r);
      }
    }
    recomputed += cost.Compute(table, ben);
  }
  EXPECT_NEAR(solution->total_cost, recomputed, 1e-9);
  EXPECT_EQ(solution->covered, covered.count());
}

TEST(OptCwscTest, StatsAreReported) {
  Table table = gen::MakeEntitiesTable();
  PatternStats stats;
  auto solution = RunOptimizedCwsc(table, CostFunction(CostKind::kMax),
                                   {2, 0.5}, &stats);
  ASSERT_TRUE(solution.ok());
  EXPECT_GT(stats.patterns_considered, 0u);
  EXPECT_GT(stats.candidates_admitted, 0u);
  EXPECT_GE(stats.patterns_considered, stats.candidates_admitted);
}

TEST(OptCwscTest, ConsidersFarFewerPatternsThanEnumerationAtScale) {
  gen::LblSynthSpec spec;
  spec.num_rows = 2000;
  spec.seed = 3;
  auto table = gen::MakeLblSynth(spec);
  ASSERT_TRUE(table.ok());
  CostFunction cost(CostKind::kMax);

  auto enumerated = pattern::EnumerateAllPatterns(*table);
  ASSERT_TRUE(enumerated.ok());

  PatternStats stats;
  auto solution = RunOptimizedCwsc(*table, cost, {10, 0.3}, &stats);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  // Fig. 6's optimized-vs-unoptimized gap: at 2k rows the trace has tens of
  // thousands of distinct patterns while the lattice frontier stays small.
  EXPECT_LT(stats.patterns_considered, enumerated->size() / 2)
      << "considered " << stats.patterns_considered << " of "
      << enumerated->size();
}

TEST(OptCwscTest, WorksWithSumCost) {
  Table table = gen::MakeEntitiesTable();
  auto solution =
      RunOptimizedCwsc(table, CostFunction(CostKind::kSum), {3, 0.5});
  ASSERT_TRUE(solution.ok());
  EXPECT_GE(solution->covered, 8u);
}

}  // namespace
}  // namespace scwsc
