#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "src/table/builder.h"

#include "gtest/gtest.h"
#include "src/gen/lbl_synth.h"
#include "src/pattern/opt_cwsc.h"
#include "src/gen/perturb.h"
#include "src/gen/toy.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

TEST(ToyGeneratorTest, MatchesPaperTableOne) {
  Table t = gen::MakeEntitiesTable();
  ASSERT_EQ(t.num_rows(), 16u);
  // Spot-check a few rows against Table I.
  EXPECT_EQ(t.value_name(0, 0), "A");
  EXPECT_EQ(t.value_name(0, 1), "West");
  EXPECT_DOUBLE_EQ(t.measure(0), 10.0);
  EXPECT_EQ(t.value_name(12, 0), "B");
  EXPECT_EQ(t.value_name(12, 1), "South");
  EXPECT_DOUBLE_EQ(t.measure(12), 1.0);
  EXPECT_DOUBLE_EQ(t.measure(15), 96.0);
}

TEST(LblSynthTest, GeneratesRequestedShape) {
  gen::LblSynthSpec spec;
  spec.num_rows = 5000;
  auto t = gen::MakeLblSynth(spec);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 5000u);
  EXPECT_EQ(t->num_attributes(), 5u);
  EXPECT_EQ(t->schema().attribute_name(0), "protocol");
  EXPECT_EQ(t->schema().attribute_name(4), "flags");
  EXPECT_EQ(t->schema().measure_name(), "session_length");
  // Active domains are bounded by the spec.
  EXPECT_LE(t->domain_size(0), spec.num_protocols);
  EXPECT_LE(t->domain_size(1), spec.num_localhosts);
  EXPECT_LE(t->domain_size(2), spec.num_remotehosts);
}

TEST(LblSynthTest, DeterministicInSeed) {
  gen::LblSynthSpec spec;
  spec.num_rows = 500;
  spec.seed = 99;
  auto a = gen::MakeLblSynth(spec);
  auto b = gen::MakeLblSynth(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (RowId r = 0; r < a->num_rows(); ++r) {
    for (std::size_t attr = 0; attr < 5; ++attr) {
      EXPECT_EQ(a->value_name(r, attr), b->value_name(r, attr));
    }
    EXPECT_DOUBLE_EQ(a->measure(r), b->measure(r));
  }
}

TEST(LblSynthTest, DifferentSeedsProduceDifferentTraces) {
  gen::LblSynthSpec spec;
  spec.num_rows = 500;
  spec.seed = 1;
  auto a = gen::MakeLblSynth(spec);
  spec.seed = 2;
  auto b = gen::MakeLblSynth(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::size_t differing = 0;
  for (RowId r = 0; r < 500; ++r) {
    if (a->value_name(r, 1) != b->value_name(r, 1)) ++differing;
  }
  EXPECT_GT(differing, 100u);
}

TEST(LblSynthTest, ProtocolDistributionIsSkewed) {
  gen::LblSynthSpec spec;
  spec.num_rows = 20'000;
  auto t = gen::MakeLblSynth(spec);
  ASSERT_TRUE(t.ok());
  std::vector<std::size_t> counts(t->domain_size(0), 0);
  for (RowId r = 0; r < t->num_rows(); ++r) ++counts[t->value(r, 0)];
  const std::size_t max_count = *std::max_element(counts.begin(), counts.end());
  const std::size_t min_count = *std::min_element(counts.begin(), counts.end());
  EXPECT_GT(max_count, 3 * min_count);  // Zipf skew is visible
}

TEST(LblSynthTest, SessionLengthsArePositive) {
  gen::LblSynthSpec spec;
  spec.num_rows = 2000;
  auto t = gen::MakeLblSynth(spec);
  ASSERT_TRUE(t.ok());
  for (RowId r = 0; r < t->num_rows(); ++r) {
    EXPECT_GT(t->measure(r), 0.0);
  }
}

TEST(LblSynthTest, SessionLengthDependsOnProtocol) {
  // The log-mean shift per attribute value must be visible: per-protocol
  // median session lengths should differ by a large factor.
  gen::LblSynthSpec spec;
  spec.num_rows = 30'000;
  auto t = gen::MakeLblSynth(spec);
  ASSERT_TRUE(t.ok());
  std::vector<std::vector<double>> by_proto(t->domain_size(0));
  for (RowId r = 0; r < t->num_rows(); ++r) {
    by_proto[t->value(r, 0)].push_back(t->measure(r));
  }
  double min_median = 0, max_median = 0;
  bool first = true;
  for (auto& v : by_proto) {
    if (v.size() < 100) continue;
    std::nth_element(v.begin(), v.begin() + std::ptrdiff_t(v.size() / 2),
                     v.end());
    const double median = v[v.size() / 2];
    if (first || median < min_median) min_median = median;
    if (first || median > max_median) max_median = median;
    first = false;
  }
  EXPECT_GT(max_median, 2.0 * min_median);
}

TEST(LblSynthTest, ZeroEffectMakesMeasureIid) {
  gen::LblSynthSpec spec;
  spec.num_rows = 30'000;
  spec.measure_attribute_effect = 0.0;
  auto t = gen::MakeLblSynth(spec);
  ASSERT_TRUE(t.ok());
  std::vector<std::vector<double>> by_proto(t->domain_size(0));
  for (RowId r = 0; r < t->num_rows(); ++r) {
    by_proto[t->value(r, 0)].push_back(t->measure(r));
  }
  double min_median = 0, max_median = 0;
  bool first = true;
  for (auto& v : by_proto) {
    if (v.size() < 500) continue;
    std::nth_element(v.begin(), v.begin() + std::ptrdiff_t(v.size() / 2),
                     v.end());
    const double median = v[v.size() / 2];
    if (first || median < min_median) min_median = median;
    if (first || median > max_median) max_median = median;
    first = false;
  }
  EXPECT_LT(max_median, 1.3 * min_median);  // iid: medians nearly equal
}

TEST(LblSynthTest, DefaultTraceAvoidsAllWildcardsDegeneracy) {
  // With attribute-dependent measures the all-wildcards pattern must not be
  // the gain-optimal answer for a mid-range coverage request.
  gen::LblSynthSpec spec;
  spec.num_rows = 8'000;
  auto t = gen::MakeLblSynth(spec);
  ASSERT_TRUE(t.ok());
  auto solution = pattern::RunOptimizedCwsc(
      *t, pattern::CostFunction(pattern::CostKind::kMax), {10, 0.5});
  ASSERT_TRUE(solution.ok());
  for (const auto& p : solution->patterns) {
    EXPECT_GT(p.num_constants(), 0u)
        << "degenerate all-wildcards selection: " << p.ToString(*t);
  }
}

TEST(LblSynthTest, ValidatesSpec) {
  gen::LblSynthSpec spec;
  spec.num_rows = 0;
  EXPECT_TRUE(gen::MakeLblSynth(spec).status().IsInvalidArgument());
  spec = gen::LblSynthSpec{};
  spec.num_protocols = 0;
  EXPECT_TRUE(gen::MakeLblSynth(spec).status().IsInvalidArgument());
  spec = gen::LblSynthSpec{};
  spec.endstate_protocol_correlation = 2.0;
  EXPECT_TRUE(gen::MakeLblSynth(spec).status().IsInvalidArgument());
}

TEST(PerturbTest, UniformPerturbStaysWithinDelta) {
  Table t = gen::MakeEntitiesTable();
  Rng rng(4);
  auto perturbed = gen::UniformPerturbMeasure(t, 0.2, rng);
  ASSERT_TRUE(perturbed.ok());
  for (RowId r = 0; r < t.num_rows(); ++r) {
    const double m = t.measure(r);
    EXPECT_GE(perturbed->measure(r), 0.8 * m - 1e-12);
    EXPECT_LE(perturbed->measure(r), 1.2 * m + 1e-12);
  }
}

TEST(PerturbTest, DeltaZeroIsIdentity) {
  Table t = gen::MakeEntitiesTable();
  Rng rng(4);
  auto perturbed = gen::UniformPerturbMeasure(t, 0.0, rng);
  ASSERT_TRUE(perturbed.ok());
  for (RowId r = 0; r < t.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(perturbed->measure(r), t.measure(r));
  }
}

TEST(PerturbTest, UniformPerturbValidatesDelta) {
  Table t = gen::MakeEntitiesTable();
  Rng rng(4);
  EXPECT_TRUE(
      gen::UniformPerturbMeasure(t, 1.5, rng).status().IsInvalidArgument());
  EXPECT_TRUE(
      gen::UniformPerturbMeasure(t, -0.1, rng).status().IsInvalidArgument());
}

TEST(PerturbTest, LogNormalRewritePreservesRankOrder) {
  Table t = gen::MakeEntitiesTable();
  Rng rng(4);
  auto rewritten = gen::LogNormalRankPreserving(t, 2.0, 1.0, rng);
  ASSERT_TRUE(rewritten.ok());
  // Original ordering by measure must equal new ordering by measure
  // (stable on ties by row id).
  std::vector<RowId> order_old(t.num_rows()), order_new(t.num_rows());
  std::iota(order_old.begin(), order_old.end(), RowId{0});
  order_new = order_old;
  std::stable_sort(order_old.begin(), order_old.end(), [&](RowId a, RowId b) {
    return t.measure(a) < t.measure(b);
  });
  std::stable_sort(order_new.begin(), order_new.end(), [&](RowId a, RowId b) {
    return rewritten->measure(a) < rewritten->measure(b);
  });
  EXPECT_EQ(order_old, order_new);
}

TEST(PerturbTest, LogNormalRewriteChangesValues) {
  Table t = gen::MakeEntitiesTable();
  Rng rng(4);
  auto rewritten = gen::LogNormalRankPreserving(t, 2.0, 1.0, rng);
  ASSERT_TRUE(rewritten.ok());
  std::size_t changed = 0;
  for (RowId r = 0; r < t.num_rows(); ++r) {
    if (std::abs(rewritten->measure(r) - t.measure(r)) > 1e-9) ++changed;
  }
  EXPECT_GT(changed, 10u);
}

TEST(PerturbTest, RequiresMeasureColumn) {
  TableBuilder builder({"x"});
  SCWSC_ASSERT_OK(builder.AddRow({"a"}));
  Table t = std::move(builder).Build();
  Rng rng(1);
  EXPECT_TRUE(
      gen::UniformPerturbMeasure(t, 0.1, rng).status().IsInvalidArgument());
  EXPECT_TRUE(gen::LogNormalRankPreserving(t, 2, 1, rng)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace scwsc
