#include "src/core/exact.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "src/common/bitset.h"

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/cwsc.h"
#include "src/core/instances.h"
#include "src/core/solution.h"

namespace scwsc {
namespace {

/// Naive reference: enumerate every subset of at most k sets.
Result<Solution> BruteForce(const SetSystem& system, std::size_t k,
                            double fraction) {
  const std::size_t m = system.num_sets();
  const std::size_t target =
      SetSystem::CoverageTarget(fraction, system.num_elements());
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<SetId> best;
  bool found = target == 0;
  if (found) return Solution{};

  std::vector<SetId> chosen;
  // Recursive enumeration over subsets of size <= k.
  std::function<void(std::size_t)> rec = [&](std::size_t start) {
    // Evaluate the current selection.
    DynamicBitset covered(system.num_elements());
    double cost = 0.0;
    for (SetId id : chosen) {
      cost += system.set(id).cost;
      for (ElementId e : system.set(id).elements) covered.set(e);
    }
    if (covered.count() >= target && cost < best_cost) {
      best_cost = cost;
      best = chosen;
      found = true;
    }
    if (chosen.size() == k) return;
    for (std::size_t i = start; i < m; ++i) {
      chosen.push_back(static_cast<SetId>(i));
      rec(i + 1);
      chosen.pop_back();
    }
  };
  rec(0);
  if (!found) return Status::Infeasible("brute force: no feasible subset");
  Solution solution;
  solution.sets = best;
  solution.total_cost = best_cost;
  DynamicBitset covered(system.num_elements());
  for (SetId id : best) {
    for (ElementId e : system.set(id).elements) covered.set(e);
  }
  solution.covered = covered.count();
  return solution;
}

TEST(ExactTest, RejectsBadOptions) {
  SetSystem system(2);
  ExactOptions opts;
  opts.k = 0;
  EXPECT_TRUE(SolveExact(system, opts).status().IsInvalidArgument());
  opts = ExactOptions{};
  opts.coverage_fraction = -1;
  EXPECT_TRUE(SolveExact(system, opts).status().IsInvalidArgument());
}

TEST(ExactTest, ZeroTargetIsFreeEmptySolution) {
  SetSystem system(5);
  ExactOptions opts;
  opts.coverage_fraction = 0.0;
  auto result = SolveExact(system, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->solution.sets.empty());
  EXPECT_DOUBLE_EQ(result->solution.total_cost, 0.0);
}

TEST(ExactTest, FindsObviousOptimum) {
  SetSystem system(6);
  ASSERT_TRUE(system.AddSet({0, 1, 2}, 5.0, "a").ok());
  ASSERT_TRUE(system.AddSet({3, 4, 5}, 5.0, "b").ok());
  ASSERT_TRUE(system.AddSet({0, 1, 2, 3, 4, 5}, 100.0, "u").ok());
  ExactOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 1.0;
  auto result = SolveExact(system, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->solution.total_cost, 10.0);
  EXPECT_EQ(result->solution.sets.size(), 2u);
}

TEST(ExactTest, InfeasibleWhenKTooSmall) {
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0}, 1.0).ok());
  ASSERT_TRUE(system.AddSet({1}, 1.0).ok());
  ExactOptions opts;
  opts.k = 1;
  opts.coverage_fraction = 0.5;  // needs 2 elements, each set has 1
  EXPECT_TRUE(SolveExact(system, opts).status().IsInfeasible());
}

TEST(ExactTest, NodeBudgetSurfacesAsResourceExhausted) {
  Rng rng(77);
  RandomSystemSpec spec;
  spec.num_elements = 60;
  spec.num_sets = 40;
  spec.ensure_universe = false;
  auto system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());
  ExactOptions opts;
  opts.k = 10;
  opts.coverage_fraction = 0.9;
  opts.max_nodes = 10;  // absurdly small
  auto result = SolveExact(*system, opts);
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST(ExactTest, NeverWorseThanGreedyCwsc) {
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    RandomSystemSpec spec;
    spec.num_elements = 25;
    spec.num_sets = 18;
    spec.max_set_size = 6;
    auto system = RandomSetSystem(spec, rng);
    ASSERT_TRUE(system.ok());
    const std::size_t k = 1 + static_cast<std::size_t>(rng.NextBounded(5));
    const double fraction = rng.NextDouble(0.2, 0.9);
    ExactOptions opts;
    opts.k = k;
    opts.coverage_fraction = fraction;
    auto exact = SolveExact(*system, opts);
    auto greedy = RunCwsc(*system, {k, fraction});
    if (greedy.ok()) {
      ASSERT_TRUE(exact.ok()) << exact.status().ToString();
      EXPECT_LE(exact->solution.total_cost,
                greedy->total_cost * (1.0 + 1e-9));
    }
  }
}

TEST(ExactTest, MatchesBruteForceOnSmallRandomInstances) {
  Rng rng(2024);
  for (int trial = 0; trial < 15; ++trial) {
    RandomSystemSpec spec;
    spec.num_elements = 12;
    spec.num_sets = 10;
    spec.max_set_size = 5;
    spec.min_cost = 1.0;
    spec.max_cost = 20.0;
    spec.ensure_universe = trial % 2 == 0;
    auto system = RandomSetSystem(spec, rng);
    ASSERT_TRUE(system.ok());
    const std::size_t k = 1 + static_cast<std::size_t>(rng.NextBounded(4));
    const double fraction = rng.NextDouble(0.2, 1.0);

    ExactOptions opts;
    opts.k = k;
    opts.coverage_fraction = fraction;
    auto bb = SolveExact(*system, opts);
    auto brute = BruteForce(*system, k, fraction);
    ASSERT_EQ(bb.ok(), brute.ok())
        << "trial " << trial << " bb=" << bb.status().ToString()
        << " brute=" << brute.status().ToString();
    if (bb.ok()) {
      EXPECT_NEAR(bb->solution.total_cost, brute->total_cost, 1e-9)
          << "trial " << trial;
      EXPECT_TRUE(SatisfiesConstraints(*system, bb->solution, k, fraction));
    }
  }
}

TEST(ExactTest, ReportsSearchNodes) {
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0, 1}, 1.0).ok());
  ASSERT_TRUE(system.AddSet({2, 3}, 1.0).ok());
  ExactOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 1.0;
  auto result = SolveExact(system, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->nodes, 0u);
}

}  // namespace
}  // namespace scwsc
