// Sharded snapshots: the shard plan is an execution detail of a snapshot,
// never a semantics change. FromSetSystem/FromTable at any shard count must
// expose the identical set-system view, the plan must be word-aligned and
// deterministic, per-shard content hashes must localize data changes to
// the shards that own them, and — the contract the whole refactor hangs on
// — every registered solver must return bit-identical results on sharded
// and flat snapshots of the same data.

#include "src/api/instance.h"

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/api/registry.h"
#include "src/common/rng.h"
#include "src/core/instances.h"
#include "src/core/shard.h"
#include "src/gen/lbl_synth.h"
#include "src/hierarchy/hierarchy.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using api::InstancePtr;
using api::SolveRequest;
using api::SolveResult;
using api::SolverRegistry;

ShardingOptions Shards(std::size_t count) {
  ShardingOptions sharding;
  sharding.num_shards = count;
  sharding.min_shard_elements = 1;  // let tiny test universes still split
  return sharding;
}

SetSystem TestSystem(std::size_t num_elements = 512, std::uint64_t seed = 9) {
  RandomSystemSpec spec;
  spec.num_elements = num_elements;
  spec.num_sets = 60;
  spec.max_set_size = num_elements / 4;
  spec.duplicate_cost_probability = 0.25;
  Rng rng(seed);
  auto system = RandomSetSystem(spec, rng);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return std::move(*system);
}

InstancePtr SetBacked(const SetSystem& system, ShardingOptions sharding) {
  auto instance =
      api::InstanceSnapshot::FromSetSystem(system.Clone(), sharding);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return *instance;
}

SolveRequest MakeRequest(InstancePtr instance, std::size_t k, double fraction,
                         const std::vector<std::string>& options = {}) {
  auto request = SolveRequest::Builder(std::move(instance))
                     .WithK(k)
                     .WithCoverage(fraction)
                     .WithOptions(options)
                     .Build();
  EXPECT_TRUE(request.ok()) << request.status().ToString();
  return *std::move(request);
}

/// Ok results compare by the full solution surface; failures by code.
std::string Outcome(const Result<SolveResult>& result) {
  if (!result.ok()) {
    return std::string("status:") +
           std::string(StatusCodeToString(result.status().code()));
  }
  std::string out = "sets:";
  for (SetId id : result->solution.sets) out += std::to_string(id) + ",";
  out += " cost:" + std::to_string(result->total_cost);
  out += " covered:" + std::to_string(result->covered);
  for (const std::string& label : result->labels) out += " " + label;
  return out;
}

TEST(ShardedSnapshotTest, ShardCountsYieldIdenticalSetSystemViews) {
  const SetSystem system = TestSystem();
  const InstancePtr flat = SetBacked(system, Shards(1));
  for (std::size_t count : {2u, 7u}) {
    const InstancePtr sharded = SetBacked(system, Shards(count));
    SCOPED_TRACE("shards=" + std::to_string(count));
    EXPECT_EQ(sharded->num_shards(), count);
    EXPECT_EQ(sharded->num_elements(), flat->num_elements());

    auto flat_view = flat->set_system();
    auto sharded_view = sharded->set_system();
    ASSERT_TRUE(flat_view.ok());
    ASSERT_TRUE(sharded_view.ok());
    ASSERT_EQ((*sharded_view)->num_sets(), (*flat_view)->num_sets());
    for (SetId id = 0; id < (*flat_view)->num_sets(); ++id) {
      EXPECT_EQ((*sharded_view)->set(id).elements,
                (*flat_view)->set(id).elements);
      EXPECT_EQ((*sharded_view)->set(id).cost, (*flat_view)->set(id).cost);
    }
  }
}

TEST(ShardedSnapshotTest, ShardPlanIsWordAlignedAndCoversTheUniverse) {
  const SetSystem system = TestSystem(640);
  const InstancePtr instance = SetBacked(system, Shards(4));
  const std::vector<std::size_t>& bounds = instance->shard_bounds();
  ASSERT_EQ(bounds.size(), instance->num_shards() + 1);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), system.num_elements());
  for (std::size_t s = 1; s < bounds.size(); ++s) {
    EXPECT_LT(bounds[s - 1], bounds[s]);
    if (s + 1 < bounds.size()) {
      EXPECT_EQ(bounds[s] % 64, 0u) << "interior bound not word-aligned";
    }
  }
  EXPECT_EQ(instance->shard_hashes().size(), instance->num_shards());
}

TEST(ShardedSnapshotTest, ContentHashAtOneShardMatchesTheDefaultPlan) {
  const SetSystem system = TestSystem();
  const InstancePtr implicit = SetBacked(system, ShardingOptions{});
  const InstancePtr explicit1 = SetBacked(system, Shards(1));
  // Identical effective plans must key identically in the snapshot cache.
  EXPECT_EQ(implicit->content_hash(), explicit1->content_hash());
  EXPECT_EQ(implicit->shard_hashes(), explicit1->shard_hashes());

  // A different plan over the same data is a different cache identity
  // (engines over it run differently), but the data hashes per shard.
  const InstancePtr sharded = SetBacked(system, Shards(4));
  EXPECT_NE(sharded->content_hash(), implicit->content_hash());
}

TEST(ShardedSnapshotTest, DataChangesLocalizeToTheOwningShardHash) {
  // 512 elements over 4 shards: [0,128) [128,256) [256,384) [384,512).
  SetSystem a(512), b(512);
  for (int s = 0; s < 8; ++s) {
    std::vector<ElementId> elements;
    for (ElementId e = static_cast<ElementId>(s * 64);
         e < static_cast<ElementId>(s * 64 + 48); ++e) {
      elements.push_back(e);
    }
    ASSERT_TRUE(a.AddSet(elements, 1.0 + s, "s" + std::to_string(s)).ok());
    if (s == 6) elements[0] = 400;  // perturb one element in shard 3
    ASSERT_TRUE(b.AddSet(elements, 1.0 + s, "s" + std::to_string(s)).ok());
  }
  auto ia = api::InstanceSnapshot::FromSetSystem(std::move(a), Shards(4));
  auto ib = api::InstanceSnapshot::FromSetSystem(std::move(b), Shards(4));
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  ASSERT_EQ((*ia)->num_shards(), 4u);
  EXPECT_NE((*ia)->content_hash(), (*ib)->content_hash());
  const auto& ha = (*ia)->shard_hashes();
  const auto& hb = (*ib)->shard_hashes();
  EXPECT_EQ(ha[0], hb[0]);
  EXPECT_EQ(ha[1], hb[1]);
  EXPECT_EQ(ha[2], hb[2]);
  EXPECT_NE(ha[3], hb[3]) << "perturbed shard must change its hash";
}

// The registry-wide sharding contract: every registered solver — set-backed
// greedy family, exact, baselines, and the capability-gated lattice and
// hierarchy solvers (whose typed refusals must also match) — produces the
// identical outcome on flat and sharded snapshots of the same system.
TEST(ShardedSnapshotTest, EveryRegisteredSolverIsBitIdenticalUnderSharding) {
  const SetSystem system = TestSystem();
  const InstancePtr flat = SetBacked(system, Shards(1));
  const InstancePtr sharded = SetBacked(system, Shards(5));
  ASSERT_EQ(sharded->num_shards(), 5u);

  for (const api::SolverInfo& info : SolverRegistry::Global().List()) {
    if (info.name.rfind("test-", 0) == 0) continue;  // stubs from other tests
    SCOPED_TRACE("solver: " + info.name);
    std::vector<std::string> options;
    if (info.name == "budgeted-max-coverage") options = {"budget=100"};
    if (info.name == "nonoverlap") options = {"best_effort=true"};
    auto expected = SolverRegistry::Global().Solve(
        info.name, MakeRequest(flat, 3, 0.5, options));
    auto got = SolverRegistry::Global().Solve(
        info.name, MakeRequest(sharded, 3, 0.5, options));
    EXPECT_EQ(Outcome(got), Outcome(expected));
  }
}

TEST(ShardedSnapshotTest, TableBackedShardingIsTransparentToSolvers) {
  gen::LblSynthSpec spec;
  spec.num_rows = 1280;
  spec.seed = 11;
  auto table = gen::MakeLblSynth(spec);
  ASSERT_TRUE(table.ok());
  auto make = [&](ShardingOptions sharding) {
    auto instance = api::InstanceSnapshot::FromTable(
        Table(*table), pattern::CostFunction(pattern::CostKind::kMax),
        std::nullopt, {}, sharding);
    EXPECT_TRUE(instance.ok()) << instance.status().ToString();
    return *instance;
  };
  const InstancePtr flat = make(Shards(1));
  const InstancePtr sharded = make(Shards(4));
  ASSERT_EQ(sharded->num_shards(), 4u);
  EXPECT_NE(flat->content_hash(), sharded->content_hash());

  // opt-cwsc never materializes the set system; cwsc enumerates it. Both
  // must be oblivious to the shard plan.
  for (const char* solver : {"opt-cwsc", "cwsc", "greedy-wsc"}) {
    SCOPED_TRACE(solver);
    auto expected =
        SolverRegistry::Global().Solve(solver, MakeRequest(flat, 4, 0.6));
    auto got =
        SolverRegistry::Global().Solve(solver, MakeRequest(sharded, 4, 0.6));
    EXPECT_EQ(Outcome(got), Outcome(expected));
  }
}

}  // namespace
}  // namespace scwsc
