#include "src/common/bitset.h"

#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace scwsc {
namespace {

TEST(DynamicBitsetTest, StartsEmpty) {
  DynamicBitset bs(100);
  EXPECT_EQ(bs.size(), 100u);
  EXPECT_EQ(bs.count(), 0u);
  EXPECT_TRUE(bs.none());
  EXPECT_FALSE(bs.all());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bs.test(i));
}

TEST(DynamicBitsetTest, SetReturnsWhetherBitWasClear) {
  DynamicBitset bs(10);
  EXPECT_TRUE(bs.set(3));
  EXPECT_FALSE(bs.set(3));  // already set
  EXPECT_TRUE(bs.test(3));
  EXPECT_EQ(bs.count(), 1u);
}

TEST(DynamicBitsetTest, ResetReturnsWhetherBitWasSet) {
  DynamicBitset bs(10);
  bs.set(7);
  EXPECT_TRUE(bs.reset(7));
  EXPECT_FALSE(bs.reset(7));
  EXPECT_EQ(bs.count(), 0u);
}

TEST(DynamicBitsetTest, CountTracksAcrossWordBoundaries) {
  DynamicBitset bs(200);
  for (std::size_t i = 0; i < 200; i += 3) bs.set(i);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 200; i += 3) ++expected;
  EXPECT_EQ(bs.count(), expected);
}

TEST(DynamicBitsetTest, AllWhenEveryBitSet) {
  DynamicBitset bs(65);  // crosses a word boundary
  for (std::size_t i = 0; i < 65; ++i) bs.set(i);
  EXPECT_TRUE(bs.all());
  EXPECT_EQ(bs.count(), 65u);
}

TEST(DynamicBitsetTest, ClearResetsEverything) {
  DynamicBitset bs(130);
  for (std::size_t i = 0; i < 130; i += 2) bs.set(i);
  bs.clear();
  EXPECT_TRUE(bs.none());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bs.test(i));
}

TEST(DynamicBitsetTest, ResizeGrowsWithClearBits) {
  DynamicBitset bs(10);
  bs.set(9);
  bs.Resize(300);
  EXPECT_EQ(bs.size(), 300u);
  EXPECT_EQ(bs.count(), 1u);
  EXPECT_TRUE(bs.test(9));
  EXPECT_FALSE(bs.test(299));
  bs.set(299);
  EXPECT_EQ(bs.count(), 2u);
}

TEST(DynamicBitsetTest, CountClearCountsUnsetIds) {
  DynamicBitset bs(50);
  bs.set(1);
  bs.set(3);
  std::vector<std::uint32_t> ids = {1, 2, 3, 4};
  EXPECT_EQ(bs.CountClear(ids), 2u);  // 2 and 4
}

TEST(DynamicBitsetTest, ForEachSetVisitsInOrder) {
  DynamicBitset bs(150);
  std::vector<std::size_t> expected = {0, 63, 64, 127, 149};
  for (std::size_t i : expected) bs.set(i);
  std::vector<std::size_t> seen;
  bs.ForEachSet([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DynamicBitsetTest, EqualityComparesContents) {
  DynamicBitset a(64), b(64);
  a.set(5);
  EXPECT_FALSE(a == b);
  b.set(5);
  EXPECT_TRUE(a == b);
  DynamicBitset c(65);
  c.set(5);
  EXPECT_FALSE(a == c);  // different universes
}

TEST(DynamicBitsetTest, AndNotCountCountsUncoveredWordBits) {
  DynamicBitset covered(200);
  covered.set(0);
  covered.set(64);
  covered.set(130);

  DynamicBitset row(200);
  row.set(0);    // covered
  row.set(1);    // not covered
  row.set(64);   // covered
  row.set(65);   // not covered
  row.set(199);  // not covered
  EXPECT_EQ(covered.AndNotCount(row.words(), row.num_words()), 3u);

  DynamicBitset empty_row(200);
  EXPECT_EQ(covered.AndNotCount(empty_row.words(), empty_row.num_words()), 0u);
}

TEST(DynamicBitsetTest, AndNotCountMatchesCountClear) {
  DynamicBitset covered(150);
  for (std::uint32_t i = 0; i < 150; i += 3) covered.set(i);
  std::vector<std::uint32_t> ids = {0, 1, 2, 63, 64, 65, 99, 149};
  DynamicBitset row(150);
  for (std::uint32_t id : ids) row.set(id);
  EXPECT_EQ(covered.AndNotCount(row.words(), row.num_words()),
            covered.CountClear(ids));
}

TEST(DynamicBitsetTest, UnionWithReturnsNewlyCoveredAndMaintainsCount) {
  DynamicBitset covered(128);
  covered.set(5);
  covered.set(70);

  DynamicBitset row(128);
  row.set(5);    // already covered
  row.set(6);    // new
  row.set(127);  // new
  EXPECT_EQ(covered.UnionWith(row.words(), row.num_words()), 2u);
  EXPECT_EQ(covered.count(), 4u);
  EXPECT_TRUE(covered.test(6));
  EXPECT_TRUE(covered.test(127));

  // Re-unioning the same row covers nothing new.
  EXPECT_EQ(covered.UnionWith(row.words(), row.num_words()), 0u);
  EXPECT_EQ(covered.count(), 4u);
}

TEST(DynamicBitsetTest, ZeroSizedBitsetIsCoherent) {
  DynamicBitset bs(0);
  EXPECT_EQ(bs.size(), 0u);
  EXPECT_TRUE(bs.none());
  EXPECT_TRUE(bs.all());  // vacuously
}

}  // namespace
}  // namespace scwsc
