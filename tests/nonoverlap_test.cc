#include "src/core/nonoverlap.h"

#include <set>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/cwsc.h"
#include "src/core/instances.h"
#include "src/gen/toy.h"
#include "src/pattern/pattern_system.h"

namespace scwsc {
namespace {

TEST(NonOverlapTest, SelectsDisjointSetsByGain) {
  SetSystem system(8);
  ASSERT_TRUE(system.AddSet({0, 1, 2, 3}, 4.0, "left").ok());   // gain 1
  ASSERT_TRUE(system.AddSet({4, 5, 6, 7}, 2.0, "right").ok());  // gain 2
  ASSERT_TRUE(system.AddSet({3, 4}, 0.5, "bridge").ok());       // gain 4
  NonOverlapOptions opts;
  opts.k = 3;
  opts.coverage_fraction = 1.0;
  auto solution = RunNonOverlappingGreedy(system, opts);
  // Greedy takes "bridge" first (best gain), which overlaps both halves;
  // neither half is then disjoint -> infeasible for full coverage.
  EXPECT_TRUE(solution.status().IsInfeasible());

  opts.coverage_fraction = 0.25;
  auto partial = RunNonOverlappingGreedy(system, opts);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(system.set(partial->sets[0]).label, "bridge");
}

TEST(NonOverlapTest, SolutionsArePairwiseDisjoint) {
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    RandomSystemSpec spec;
    spec.num_elements = 30 + rng.NextBounded(40);
    spec.num_sets = 20 + rng.NextBounded(60);
    spec.max_set_size = 1 + rng.NextBounded(6);
    auto system = RandomSetSystem(spec, rng);
    ASSERT_TRUE(system.ok());
    NonOverlapOptions opts;
    opts.k = 1 + rng.NextBounded(10);
    opts.coverage_fraction = rng.NextDouble(0.1, 0.8);
    auto solution = RunNonOverlappingGreedy(*system, opts);
    if (!solution.ok()) continue;
    std::set<ElementId> seen;
    std::size_t total = 0;
    for (SetId id : solution->sets) {
      for (ElementId e : system->set(id).elements) {
        seen.insert(e);
        ++total;
      }
    }
    EXPECT_EQ(seen.size(), total) << "overlap in trial " << trial;
    EXPECT_EQ(solution->covered, total);
    EXPECT_LE(solution->sets.size(), opts.k);
  }
}

TEST(NonOverlapTest, OverlapFreedomCostsFeasibilityOnTheToy) {
  // The §III comparison on the paper's own example: with k = 2 and target
  // 9/16, SCWSC solves it (cost 27/28) while the non-overlapping greedy
  // cannot (the big B·ALL pattern overlaps every useful complement).
  Table table = gen::MakeEntitiesTable();
  auto system = pattern::PatternSystem::Build(
      table, pattern::CostFunction(pattern::CostKind::kMax));
  ASSERT_TRUE(system.ok());

  auto cwsc = RunCwsc(system->set_system(), {2, 9.0 / 16.0});
  ASSERT_TRUE(cwsc.ok());

  NonOverlapOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  auto nonoverlap = RunNonOverlappingGreedy(system->set_system(), opts);
  // Either it fails, or it pays at least as much as CWSC on this instance.
  if (nonoverlap.ok()) {
    EXPECT_GE(nonoverlap->total_cost, cwsc->total_cost - 1e-9);
  }
}

TEST(NonOverlapTest, FullCoveragePartitionWhenOneExists) {
  SetSystem system(6);
  ASSERT_TRUE(system.AddSet({0, 1}, 1.0).ok());
  ASSERT_TRUE(system.AddSet({2, 3}, 1.0).ok());
  ASSERT_TRUE(system.AddSet({4, 5}, 1.0).ok());
  NonOverlapOptions opts;
  opts.k = 3;
  auto solution = RunNonOverlappingGreedy(system, opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->covered, 6u);
  EXPECT_EQ(solution->sets.size(), 3u);
}

TEST(NonOverlapTest, ValidatesOptions) {
  SetSystem system(2);
  ASSERT_TRUE(system.AddSet({0, 1}, 1.0).ok());
  NonOverlapOptions opts;
  opts.k = 0;
  EXPECT_TRUE(
      RunNonOverlappingGreedy(system, opts).status().IsInvalidArgument());
  opts.k = 1;
  opts.coverage_fraction = -1;
  EXPECT_TRUE(
      RunNonOverlappingGreedy(system, opts).status().IsInvalidArgument());
}

TEST(NonOverlapTest, ZeroTargetIsEmpty) {
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0}, 1.0).ok());
  NonOverlapOptions opts;
  opts.coverage_fraction = 0.0;
  auto solution = RunNonOverlappingGreedy(system, opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->sets.empty());
}

}  // namespace
}  // namespace scwsc
