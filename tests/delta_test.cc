// SnapshotDelta edge cases: bit-identity of delta-applied snapshots against
// from-scratch rebuilds (the serve_soak gate in miniature), per-shard hash
// chaining and its localization rules, version chaining, cross-version
// shard sharing through the SnapshotCache, and the typed rejections
// (mixed op families, out-of-range indices, hierarchies).

#include "src/api/delta.h"

#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "src/api/instance.h"
#include "src/api/registry.h"
#include "src/core/set_system.h"
#include "src/ext/incremental.h"
#include "src/obs/metrics.h"
#include "src/serve/cache.h"
#include "src/table/builder.h"

namespace scwsc {
namespace {

using api::AppliedDelta;
using api::ApplyDelta;
using api::InstancePtr;
using api::SnapshotDelta;

constexpr std::size_t kUniverse = 512;

ShardingOptions FourShards() {
  ShardingOptions sharding;
  sharding.num_shards = 4;
  sharding.min_shard_elements = 64;
  return sharding;
}

/// A set system over 512 elements whose sets are 64-element blocks, so each
/// set lives entirely inside one of the four 128-element shards.
SetSystem BlockSystem() {
  SetSystem system(kUniverse);
  for (std::size_t block = 0; block < kUniverse / 64; ++block) {
    std::vector<ElementId> elements;
    for (std::size_t e = block * 64; e < (block + 1) * 64; ++e) {
      elements.push_back(static_cast<ElementId>(e));
    }
    auto added = system.AddSet(std::move(elements),
                               1.0 + 0.1 * static_cast<double>(block),
                               "block-" + std::to_string(block));
    EXPECT_TRUE(added.ok()) << added.status().ToString();
  }
  return system;
}

InstancePtr BlockInstance() {
  auto instance =
      api::InstanceSnapshot::FromSetSystem(BlockSystem(), FourShards());
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return *instance;
}

/// A 256-row table (one shard per 64-row block under FourShards) with two
/// low-cardinality attributes, small enough for pattern enumeration.
Table WideTable(std::size_t num_rows = 256) {
  TableBuilder builder({"region", "tier"}, "load");
  for (std::size_t row = 0; row < num_rows; ++row) {
    const std::string region = "r" + std::to_string(row % 4);
    const std::string tier = "t" + std::to_string((row / 4) % 3);
    EXPECT_TRUE(
        builder
            .AddRow({std::string_view(region), std::string_view(tier)},
                    1.0 + static_cast<double>(row % 7))
            .ok());
  }
  return std::move(builder).Build();
}

InstancePtr WideInstance() {
  auto instance = api::InstanceSnapshot::FromTable(
      WideTable(), pattern::CostFunction(pattern::CostKind::kMax),
      std::nullopt, {}, FourShards());
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return *instance;
}

TEST(DeltaTest, EmptyDeltaChainsEveryShardAndKeepsTheHash) {
  InstancePtr parent = BlockInstance();
  auto applied = ApplyDelta(parent, SnapshotDelta{});
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->snapshot->content_hash(), parent->content_hash());
  EXPECT_EQ(applied->snapshot->shard_hashes(), parent->shard_hashes());
  EXPECT_EQ(applied->stats.child_version, 1u);
  EXPECT_EQ(applied->stats.shards_total, 4u);
  EXPECT_EQ(applied->stats.shards_chained, 4u);
  EXPECT_EQ(applied->stats.shards_rehashed, 0u);
  EXPECT_EQ(applied->snapshot->delta_version(), 1u);
  EXPECT_EQ(parent->delta_version(), 0u);
}

TEST(DeltaTest, AddOnlySetDeltaDirtiesExactlyTheTouchedShard) {
  InstancePtr parent = BlockInstance();
  SnapshotDelta delta;
  // All elements in [448, 512) = the last of the four shards.
  SnapshotDelta::SetAdd add;
  for (ElementId e = 448; e < 480; ++e) add.elements.push_back(e);
  add.cost = 0.5;
  add.label = "tail-set";
  delta.add_sets.push_back(std::move(add));

  auto applied = ApplyDelta(parent, delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->stats.shards_chained, 3u);
  EXPECT_EQ(applied->stats.shards_rehashed, 1u);
  EXPECT_EQ(applied->stats.sets_added, 1u);
  // The three untouched shards keep their exact hashes; the fourth moved.
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(applied->snapshot->shard_hashes()[s], parent->shard_hashes()[s])
        << "shard " << s;
  }
  EXPECT_NE(applied->snapshot->shard_hashes()[3], parent->shard_hashes()[3]);
  EXPECT_NE(applied->snapshot->content_hash(), parent->content_hash());
}

TEST(DeltaTest, SetDeltaIsBitIdenticalToScratchRebuild) {
  InstancePtr parent = BlockInstance();
  SnapshotDelta delta;
  delta.remove_sets = {2};
  SnapshotDelta::SetAdd add;
  add.elements = {10, 200, 400};
  add.cost = 3.0;
  add.label = "spanning";
  delta.add_sets.push_back(add);

  auto applied = ApplyDelta(parent, delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  // Rebuild the mutated system from scratch: survivors in id order, then
  // the appended set. Hashes must match bit for bit.
  SetSystem scratch(kUniverse);
  auto before_or = parent->set_system();
  ASSERT_TRUE(before_or.ok());
  const SetSystem& before = **before_or;
  for (SetId id = 0; id < before.num_sets(); ++id) {
    if (id == 2) continue;
    const WeightedSet& s = before.set(id);
    ASSERT_TRUE(scratch.AddSet(s.elements, s.cost, s.label).ok());
  }
  ASSERT_TRUE(scratch.AddSet(add.elements, add.cost, add.label).ok());
  auto rebuilt =
      api::InstanceSnapshot::FromSetSystem(std::move(scratch), FourShards());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(applied->snapshot->content_hash(), (*rebuilt)->content_hash());
  EXPECT_EQ(applied->snapshot->shard_hashes(), (*rebuilt)->shard_hashes());
}

TEST(DeltaTest, RemovalDirtiesAllShardsOfLaterSets) {
  InstancePtr parent = BlockInstance();
  SnapshotDelta delta;
  delta.remove_sets = {0};  // renumbers every later set id

  auto applied = ApplyDelta(parent, delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  // Every shard holds elements of some set with id >= 1, so nothing chains.
  EXPECT_EQ(applied->stats.shards_chained, 0u);
  EXPECT_EQ(applied->stats.sets_removed, 1u);
}

TEST(DeltaTest, RetractThenAppendSameRowKeepsTheContentHash) {
  InstancePtr parent = WideInstance();
  const Table& table = parent->table();
  const std::size_t victim = 200;  // inside the last shard

  SnapshotDelta delta;
  delta.retract_rows = {victim};
  SnapshotDelta::RowAppend append;
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    append.values.push_back(std::string(table.value_name(victim, a)));
  }
  append.measure = table.measure(victim);
  delta.append_rows.push_back(std::move(append));

  auto applied = ApplyDelta(parent, delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->stats.rows_retracted, 1u);
  EXPECT_EQ(applied->stats.rows_appended, 1u);
  // Retracting row 200 and re-appending identical values reproduces the
  // same row sequence only when the victim was the last row; here rows
  // shifted, so the hash legitimately changes — but shards strictly below
  // the first retracted index chain (row count is unchanged).
  EXPECT_GT(applied->stats.shards_chained, 0u);
  EXPECT_LT(applied->stats.shards_chained, applied->stats.shards_total);

  // Retract-then-append of the *final* row is the identity mutation.
  const RowId last = static_cast<RowId>(table.num_rows() - 1);
  SnapshotDelta identity;
  identity.retract_rows = {last};
  SnapshotDelta::RowAppend same;
  for (std::size_t a = 0; a < table.num_attributes(); ++a) {
    same.values.push_back(std::string(table.value_name(last, a)));
  }
  same.measure = table.measure(last);
  identity.append_rows.push_back(std::move(same));
  auto unchanged = ApplyDelta(parent, identity);
  ASSERT_TRUE(unchanged.ok()) << unchanged.status().ToString();
  EXPECT_EQ(unchanged->snapshot->content_hash(), parent->content_hash());
}

TEST(DeltaTest, TableDeltaIsBitIdenticalToScratchRebuildAndSolvesEqual) {
  InstancePtr parent = WideInstance();
  SnapshotDelta delta;
  delta.retract_rows = {7, 31};
  for (int i = 0; i < 2; ++i) {
    SnapshotDelta::RowAppend append;
    append.values = {"r9", "t9"};
    append.measure = 2.5;
    delta.append_rows.push_back(std::move(append));
  }
  auto applied = ApplyDelta(parent, delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  // Scratch rebuild over the same mutated row sequence.
  const Table& table = parent->table();
  TableBuilder builder({"region", "tier"}, "load");
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    if (row == 7 || row == 31) continue;
    std::vector<std::string> values;
    for (std::size_t a = 0; a < table.num_attributes(); ++a) {
      values.push_back(
          std::string(table.value_name(static_cast<RowId>(row), a)));
    }
    std::vector<std::string_view> views(values.begin(), values.end());
    ASSERT_TRUE(
        builder.AddRow(views, table.measure(static_cast<RowId>(row))).ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(builder.AddRow({"r9", "t9"}, 2.5).ok());
  }
  auto rebuilt = api::InstanceSnapshot::FromTable(
      std::move(builder).Build(), pattern::CostFunction(pattern::CostKind::kMax),
      std::nullopt, {}, FourShards());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(applied->snapshot->content_hash(), (*rebuilt)->content_hash());

  // And the two snapshots solve identically (same data, same solver).
  for (const InstancePtr& instance :
       {applied->snapshot, static_cast<InstancePtr>(*rebuilt)}) {
    auto request = api::SolveRequest::Builder(instance)
                       .WithK(3)
                       .WithCoverage(0.5)
                       .Build();
    ASSERT_TRUE(request.ok());
    auto result =
        api::SolverRegistry::Global().Solve("opt-cwsc", *request, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  auto request = api::SolveRequest::Builder(applied->snapshot)
                     .WithK(3)
                     .WithCoverage(0.5)
                     .Build();
  ASSERT_TRUE(request.ok());
  auto from_delta =
      api::SolverRegistry::Global().Solve("opt-cwsc", *request, nullptr);
  auto rebuilt_request = api::SolveRequest::Builder(*rebuilt)
                             .WithK(3)
                             .WithCoverage(0.5)
                             .Build();
  ASSERT_TRUE(rebuilt_request.ok());
  auto from_scratch = api::SolverRegistry::Global().Solve(
      "opt-cwsc", *rebuilt_request, nullptr);
  ASSERT_TRUE(from_delta.ok() && from_scratch.ok());
  EXPECT_EQ(from_delta->labels, from_scratch->labels);
  EXPECT_DOUBLE_EQ(from_delta->total_cost, from_scratch->total_cost);
}

TEST(DeltaTest, VersionsChainAcrossApplications) {
  InstancePtr head = BlockInstance();
  for (std::size_t version = 1; version <= 3; ++version) {
    SnapshotDelta delta;
    SnapshotDelta::SetAdd add;
    add.elements = {static_cast<ElementId>(version)};
    add.cost = 1.0;
    add.label = "v" + std::to_string(version);
    delta.add_sets.push_back(std::move(add));
    auto applied = ApplyDelta(head, delta);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_EQ(applied->stats.child_version, version);
    EXPECT_EQ(applied->snapshot->delta_version(), version);
    head = applied->snapshot;
  }
}

TEST(DeltaTest, ResidentShardOverlapIsPositiveAcrossVersions) {
  obs::MetricRegistry metrics;
  serve::SnapshotCache cache(64ull << 20, &metrics);
  InstancePtr parent = BlockInstance();
  ASSERT_TRUE(cache.Insert(parent->content_hash(), parent).ok());

  SnapshotDelta delta;
  SnapshotDelta::SetAdd add;
  add.elements = {500};
  add.cost = 0.25;
  add.label = "probe";
  delta.add_sets.push_back(std::move(add));
  auto applied = ApplyDelta(parent, delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  // Three of four shard hashes are carried over, so the child overlaps the
  // resident parent on exactly those shards.
  EXPECT_EQ(cache.ResidentShardOverlap(*applied->snapshot), 3u);
  ASSERT_TRUE(cache.Insert(applied->snapshot->content_hash(),
                           applied->snapshot)
                  .ok());
  EXPECT_EQ(metrics.CounterValue("serve.snapshot_cache.shard_shared"), 3u);
}

TEST(DeltaTest, MixedAndInvalidOpsAreTyped) {
  InstancePtr sets = BlockInstance();
  InstancePtr rows = WideInstance();

  SnapshotDelta row_ops;
  row_ops.retract_rows = {0};
  EXPECT_EQ(ApplyDelta(sets, row_ops).status().code(),
            StatusCode::kInvalidArgument);

  SnapshotDelta set_ops;
  set_ops.remove_sets = {0};
  EXPECT_EQ(ApplyDelta(rows, set_ops).status().code(),
            StatusCode::kInvalidArgument);

  SnapshotDelta out_of_range;
  out_of_range.retract_rows = {100000};
  EXPECT_EQ(ApplyDelta(rows, out_of_range).status().code(),
            StatusCode::kInvalidArgument);

  SnapshotDelta bad_arity;
  bad_arity.append_rows.push_back({{"only-one-value"}, 0.0});
  EXPECT_EQ(ApplyDelta(rows, bad_arity).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(ApplyDelta(nullptr, SnapshotDelta{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DeltaTest, WarmStartCarriesParentSelectionAcrossADelta) {
  InstancePtr parent = BlockInstance();
  auto request = api::SolveRequest::Builder(parent)
                     .WithK(4)
                     .WithCoverage(0.5)
                     .Build();
  ASSERT_TRUE(request.ok());
  auto parent_result =
      api::SolverRegistry::Global().Solve("greedy-wsc", *request, nullptr);
  ASSERT_TRUE(parent_result.ok()) << parent_result.status().ToString();

  SnapshotDelta delta;
  SnapshotDelta::SetAdd add;
  add.elements = {1, 2, 3};
  add.cost = 10.0;  // expensive: the parent selection should survive
  add.label = "pricey";
  delta.add_sets.push_back(std::move(add));
  auto applied = ApplyDelta(parent, delta);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  auto child_request = api::SolveRequest::Builder(applied->snapshot)
                           .WithK(4)
                           .WithCoverage(0.5)
                           .Build();
  ASSERT_TRUE(child_request.ok());
  ext::WarmStartStats stats;
  auto warm = ext::WarmStartSolve("greedy-wsc", *child_request,
                                  &*parent_result, &stats);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_FALSE(stats.fell_back);
  EXPECT_GT(stats.carried, 0u);
  EXPECT_GE(warm->covered,
            SetSystem::CoverageTarget(0.5, kUniverse));
}

}  // namespace
}  // namespace scwsc
