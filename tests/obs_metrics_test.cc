// Tests for the metric registry (counters, gauges, histograms, concurrent
// recording) and the metrics JSON/CSV exporters.

#include "src/obs/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/export.h"
#include "tests/test_util.h"

namespace scwsc {
namespace obs {
namespace {

TEST(MetricRegistryTest, CounterGetOrCreateIsStable) {
  MetricRegistry registry;
  MetricCounter& a = registry.counter("solve.picks");
  a.Increment();
  MetricCounter& b = registry.counter("solve.picks");
  b.Increment(4);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(registry.CounterValue("solve.picks"), 5u);
  EXPECT_EQ(registry.CounterValue("never.created"), 0u);
}

TEST(MetricRegistryTest, GaugeIsLastWriteWins) {
  MetricRegistry registry;
  registry.gauge("budget").Set(8.0);
  registry.gauge("budget").Set(16.0);
  EXPECT_EQ(registry.GaugeValue("budget"), 16.0);
  EXPECT_EQ(registry.GaugeValue("missing"), 0.0);
}

TEST(MetricRegistryTest, HistogramBucketsAreInclusiveUpperBounds) {
  MetricRegistry registry;
  MetricHistogram& h = registry.histogram("seconds", {0.1, 1.0, 10.0});
  h.Observe(0.05);   // bucket 0 (<= 0.1)
  h.Observe(0.1);    // bucket 0 (inclusive)
  h.Observe(0.5);    // bucket 1
  h.Observe(100.0);  // overflow bucket
  const MetricHistogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.total, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.05 + 0.1 + 0.5 + 100.0);
}

TEST(MetricRegistryTest, HistogramBoundsFixedOnFirstCreation) {
  MetricRegistry registry;
  MetricHistogram& h = registry.histogram("h", {1.0, 2.0});
  MetricHistogram& again = registry.histogram("h", {42.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.snapshot().bounds.size(), 2u);
}

TEST(MetricRegistryTest, ConcurrentIncrementsSumExactly) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve-once-then-update, the pattern the hot loops use.
      MetricCounter& counter = registry.counter("shared");
      MetricHistogram& hist = registry.histogram("lat", {0.5});
      for (int i = 0; i < kIncrements; ++i) {
        counter.Increment();
        hist.Observe(0.25);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("shared"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  const auto snap = registry.histogram("lat", {}).snapshot();
  EXPECT_EQ(snap.total, static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_NEAR(snap.sum, 0.25 * kThreads * kIncrements, 1e-6);
}

TEST(MetricRegistryTest, SnapshotsAreSortedByName) {
  MetricRegistry registry;
  registry.counter("zeta").Increment();
  registry.counter("alpha").Increment();
  registry.counter("mid").Increment();
  const auto values = registry.CounterValues();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].first, "alpha");
  EXPECT_EQ(values[1].first, "mid");
  EXPECT_EQ(values[2].first, "zeta");
}

TEST(MetricsExportTest, JsonIsWellFormedAndCarriesEveryInstrument) {
  MetricRegistry registry;
  registry.counter("engine.celf_hits").Increment(7);
  registry.gauge("solve.cwsc.final_budget").Set(32.0);
  registry.histogram("solve.seconds", {0.001, 0.1}).Observe(0.02);

  const std::string json = ToMetricsJson(registry);
  EXPECT_TRUE(test::JsonChecker::IsValid(json)) << json;
  EXPECT_NE(json.find("\"engine.celf_hits\":7"), std::string::npos);
  EXPECT_NE(json.find("solve.cwsc.final_budget"), std::string::npos);
  EXPECT_NE(json.find("\"solve.seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

TEST(MetricsExportTest, EmptyRegistryStillParses) {
  MetricRegistry registry;
  EXPECT_TRUE(test::JsonChecker::IsValid(ToMetricsJson(registry)));
}

TEST(MetricsExportTest, JsonCarriesSketchQuantiles) {
  MetricRegistry registry;
  registry.sketch("serve.latency_seconds#cwsc").Observe(0.25);
  const std::string json = ToMetricsJson(registry);
  EXPECT_TRUE(test::JsonChecker::IsValid(json)) << json;
  EXPECT_NE(json.find("\"sketches\""), std::string::npos);
  EXPECT_NE(json.find("serve.latency_seconds#cwsc"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsExportTest, PrometheusTextRendersEveryInstrument) {
  MetricRegistry registry;
  registry.counter("serve.jobs.completed").Increment(3);
  registry.gauge("serve.queue.depth").Set(4.0);
  registry.histogram("lat", {0.1, 1.0}).Observe(0.5);
  registry.sketch("serve.latency_seconds#cwsc").Observe(0.02);

  const std::string text = ToPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE scwsc_serve_jobs_completed counter"),
            std::string::npos);
  EXPECT_NE(text.find("scwsc_serve_jobs_completed 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scwsc_serve_queue_depth gauge"),
            std::string::npos);
  // Histograms render cumulative le buckets ending at +Inf.
  EXPECT_NE(text.find("scwsc_lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  // Sketch members become labelled summary quantiles on the family name.
  EXPECT_NE(text.find("scwsc_serve_latency_seconds{member=\"cwsc\","),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("_count"), std::string::npos);
}

// The satellite for continuous telemetry: exporters render while writer
// threads are mid-update, so a reader must never see torn state or crash
// (the TSan CI job runs this test under ThreadSanitizer).
TEST(MetricsExportTest, ConcurrentWritersAndExportersStayWellFormed) {
  MetricRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kUpdates = 3000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&registry, t] {
      const std::string suffix = std::to_string(t);
      for (int i = 0; i < kUpdates; ++i) {
        registry.counter("w.count." + suffix).Increment();
        registry.gauge("w.gauge." + suffix).Set(static_cast<double>(i));
        registry.histogram("w.hist", {0.5, 5.0}).Observe(1.0);
        registry.sketch("w.lat#" + suffix).Observe(0.001 * (i + 1));
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(test::JsonChecker::IsValid(ToMetricsJson(registry)));
    const std::string csv = ToMetricsCsv(registry);
    EXPECT_EQ(csv.rfind("kind,name,value\n", 0), 0u);
    // Exercised for data races only: the registry may legitimately still
    // be empty if this round outruns every writer's first update.
    (void)ToPrometheusText(registry);
  }
  for (std::thread& t : writers) t.join();
  EXPECT_FALSE(ToPrometheusText(registry).empty());
  for (int t = 0; t < kWriters; ++t) {
    EXPECT_EQ(registry.CounterValue("w.count." + std::to_string(t)),
              static_cast<std::uint64_t>(kUpdates));
  }
  const std::string json = ToMetricsJson(registry);
  EXPECT_TRUE(test::JsonChecker::IsValid(json)) << json;
}

TEST(MetricsExportTest, CsvFlattensHistogramBuckets) {
  MetricRegistry registry;
  registry.counter("picks").Increment(3);
  registry.gauge("budget").Set(8.0);
  registry.histogram("lat", {1.0}).Observe(0.5);

  const std::string csv = ToMetricsCsv(registry);
  EXPECT_EQ(csv.rfind("kind,name,value\n", 0), 0u);  // header first
  EXPECT_NE(csv.find("counter,picks,3\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,budget,8\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat.le_1,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat.le_inf,0\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat.total,1\n"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace scwsc
