#include "src/common/strings.h"

#include "gtest/gtest.h"

namespace scwsc {
namespace {

TEST(SplitViewTest, SplitsOnDelimiter) {
  auto parts = SplitView("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitViewTest, PreservesEmptyFields) {
  auto parts = SplitView(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(SplitViewTest, EmptyInputYieldsOneEmptyField) {
  auto parts = SplitView("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripViewTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(StripView("  x y  "), "x y");
  EXPECT_EQ(StripView("\t\nabc\r "), "abc");
  EXPECT_EQ(StripView("   "), "");
  EXPECT_EQ(StripView(""), "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(ParseDoubleTest, ParsesPlainAndScientific) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2"), -2.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  7.25 "), 7.25);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_TRUE(ParseDouble("").status().IsParseError());
  EXPECT_TRUE(ParseDouble("abc").status().IsParseError());
  EXPECT_TRUE(ParseDouble("1.5x").status().IsParseError());
  EXPECT_TRUE(ParseDouble("nan").status().IsParseError());
  EXPECT_TRUE(ParseDouble("inf").status().IsParseError());
}

TEST(ParseU64Test, ParsesNonNegativeIntegers) {
  EXPECT_EQ(*ParseU64("0"), 0u);
  EXPECT_EQ(*ParseU64("18446744073709551615"), 18446744073709551615ull);
}

TEST(ParseU64Test, RejectsNegativeAndOverflow) {
  EXPECT_TRUE(ParseU64("-1").status().IsParseError());
  EXPECT_TRUE(ParseU64("18446744073709551616").status().IsParseError());
  EXPECT_TRUE(ParseU64("12.5").status().IsParseError());
  EXPECT_TRUE(ParseU64("").status().IsParseError());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(FormatNumberTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatNumber(24.0), "24");
  EXPECT_EQ(FormatNumber(27.5), "27.5");
  EXPECT_EQ(FormatNumber(0.0), "0");
}

}  // namespace
}  // namespace scwsc
