#include "src/table/table.h"

#include <set>

#include "gtest/gtest.h"
#include "src/table/builder.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

Table MakeSmallTable() {
  TableBuilder builder({"color", "shape"}, "weight");
  EXPECT_TRUE(builder.AddRow({"red", "circle"}, 1.0).ok());
  EXPECT_TRUE(builder.AddRow({"red", "square"}, 2.0).ok());
  EXPECT_TRUE(builder.AddRow({"blue", "circle"}, 3.0).ok());
  EXPECT_TRUE(builder.AddRow({"green", "triangle"}, 4.0).ok());
  EXPECT_TRUE(builder.AddRow({"red", "circle"}, 5.0).ok());
  return std::move(builder).Build();
}

TEST(DictionaryTest, AssignsDenseIdsInFirstSeenOrder) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);
  EXPECT_EQ(dict.GetOrAdd("b"), 1u);
  EXPECT_EQ(dict.GetOrAdd("a"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(0), "a");
  EXPECT_EQ(dict.Name(1), "b");
}

TEST(DictionaryTest, FindReportsMissingValues) {
  Dictionary dict;
  dict.GetOrAdd("x");
  EXPECT_EQ(*dict.Find("x"), 0u);
  EXPECT_TRUE(dict.Find("y").status().IsNotFound());
}

TEST(SchemaTest, AttributeIndexLookup) {
  Schema schema({"a", "b", "c"}, "m");
  EXPECT_EQ(*schema.AttributeIndex("b"), 1u);
  EXPECT_TRUE(schema.AttributeIndex("zz").status().IsNotFound());
  EXPECT_TRUE(schema.has_measure());
  EXPECT_EQ(schema.measure_name(), "m");
}

TEST(SchemaTest, NoMeasure) {
  Schema schema({"a"}, "");
  EXPECT_FALSE(schema.has_measure());
}

TEST(TableBuilderTest, RejectsWrongArity) {
  TableBuilder builder({"a", "b"});
  EXPECT_TRUE(builder.AddRow({"only-one"}).IsInvalidArgument());
  SCWSC_EXPECT_OK(builder.AddRow({"x", "y"}));
  EXPECT_EQ(builder.num_rows(), 1u);
}

TEST(TableTest, ValuesRoundTripThroughDictionaries) {
  Table t = MakeSmallTable();
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.num_attributes(), 2u);
  EXPECT_EQ(t.value_name(0, 0), "red");
  EXPECT_EQ(t.value_name(2, 0), "blue");
  EXPECT_EQ(t.value_name(3, 1), "triangle");
  EXPECT_EQ(t.value(0, 0), t.value(4, 0));  // both "red"
  EXPECT_EQ(t.domain_size(0), 3u);
  EXPECT_EQ(t.domain_size(1), 3u);
  EXPECT_TRUE(t.has_measure());
  EXPECT_DOUBLE_EQ(t.measure(3), 4.0);
}

TEST(TableTest, HeadKeepsPrefixAndRedensifiesDomains) {
  Table t = MakeSmallTable();
  Table head = t.Head(2);
  EXPECT_EQ(head.num_rows(), 2u);
  // Rows 0-1 are red circle / red square: color domain shrinks to 1.
  EXPECT_EQ(head.domain_size(0), 1u);
  EXPECT_EQ(head.domain_size(1), 2u);
  EXPECT_EQ(head.value_name(1, 1), "square");
  EXPECT_DOUBLE_EQ(head.measure(1), 2.0);
}

TEST(TableTest, HeadClampsToRowCount) {
  Table t = MakeSmallTable();
  EXPECT_EQ(t.Head(99).num_rows(), 5u);
}

TEST(TableTest, SampleIsDeterministicGivenSeed) {
  Table t = MakeSmallTable();
  Rng rng1(5), rng2(5);
  Table s1 = t.Sample(3, rng1);
  Table s2 = t.Sample(3, rng2);
  ASSERT_EQ(s1.num_rows(), 3u);
  for (RowId r = 0; r < 3; ++r) {
    EXPECT_EQ(s1.value_name(r, 0), s2.value_name(r, 0));
    EXPECT_DOUBLE_EQ(s1.measure(r), s2.measure(r));
  }
}

TEST(TableTest, SampleWithoutReplacementPreservesMultiset) {
  Table t = MakeSmallTable();
  Rng rng(9);
  Table s = t.Sample(5, rng);  // full sample = permutation restored to order
  ASSERT_EQ(s.num_rows(), 5u);
  std::multiset<double> orig, sampled;
  for (RowId r = 0; r < 5; ++r) {
    orig.insert(t.measure(r));
    sampled.insert(s.measure(r));
  }
  EXPECT_EQ(orig, sampled);
}

TEST(TableTest, ProjectAttributesKeepsSelectedColumns) {
  Table t = MakeSmallTable();
  auto projected = t.ProjectAttributes({1});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->num_attributes(), 1u);
  EXPECT_EQ(projected->schema().attribute_name(0), "shape");
  EXPECT_EQ(projected->value_name(3, 0), "triangle");
  EXPECT_TRUE(projected->has_measure());
  EXPECT_DOUBLE_EQ(projected->measure(4), 5.0);
}

TEST(TableTest, ProjectAttributesRejectsBadIndex) {
  Table t = MakeSmallTable();
  EXPECT_TRUE(t.ProjectAttributes({5}).status().IsInvalidArgument());
}

TEST(TableTest, WithMeasureReplacesColumn) {
  Table t = MakeSmallTable();
  auto replaced = t.WithMeasure({9, 8, 7, 6, 5});
  ASSERT_TRUE(replaced.ok());
  EXPECT_DOUBLE_EQ(replaced->measure(0), 9.0);
  EXPECT_EQ(replaced->value_name(0, 0), "red");
}

TEST(TableTest, WithMeasureRejectsWrongLength) {
  Table t = MakeSmallTable();
  EXPECT_TRUE(t.WithMeasure({1.0}).status().IsInvalidArgument());
}

TEST(TableTest, TableWithoutMeasure) {
  TableBuilder builder({"x"});
  SCWSC_ASSERT_OK(builder.AddRow({"v"}));
  Table t = std::move(builder).Build();
  EXPECT_FALSE(t.has_measure());
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace scwsc
