#include "src/core/set_system.h"

#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "src/core/solution.h"

namespace scwsc {
namespace {

TEST(SetSystemTest, AddSetSortsAndDeduplicates) {
  SetSystem system(10);
  auto id = system.AddSet({5, 1, 3, 1, 5}, 2.0, "s");
  ASSERT_TRUE(id.ok());
  const WeightedSet& s = system.set(*id);
  EXPECT_EQ(s.elements, (std::vector<ElementId>{1, 3, 5}));
  EXPECT_DOUBLE_EQ(s.cost, 2.0);
  EXPECT_EQ(s.label, "s");
}

TEST(SetSystemTest, RejectsOutOfUniverseElements) {
  SetSystem system(4);
  EXPECT_TRUE(system.AddSet({4}, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(system.AddSet({0, 99}, 1.0).status().IsInvalidArgument());
}

TEST(SetSystemTest, RejectsNegativeOrNonFiniteCosts) {
  SetSystem system(4);
  EXPECT_TRUE(system.AddSet({0}, -1.0).status().IsInvalidArgument());
  EXPECT_TRUE(system.AddSet({0}, std::nan("")).status().IsInvalidArgument());
  EXPECT_TRUE(
      system.AddSet({0}, std::numeric_limits<double>::infinity())
          .status()
          .IsInvalidArgument());
}

TEST(SetSystemTest, EmptySetIsAllowed) {
  SetSystem system(4);
  auto id = system.AddSet({}, 0.0);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(system.set(*id).elements.empty());
}

TEST(SetSystemTest, TotalCostSums) {
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0}, 1.5).ok());
  ASSERT_TRUE(system.AddSet({1}, 2.5).ok());
  EXPECT_DOUBLE_EQ(system.TotalCost(), 4.0);
}

TEST(SetSystemTest, KCheapestCostPicksSmallest) {
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0}, 10).ok());
  ASSERT_TRUE(system.AddSet({1}, 2).ok());
  ASSERT_TRUE(system.AddSet({2}, 3).ok());
  EXPECT_DOUBLE_EQ(system.KCheapestCost(2), 5.0);
  EXPECT_DOUBLE_EQ(system.KCheapestCost(99), 15.0);  // clamped
  EXPECT_DOUBLE_EQ(system.KCheapestCost(0), 0.0);
}

TEST(SetSystemTest, HasUniverseSetDetection) {
  SetSystem system(3);
  ASSERT_TRUE(system.AddSet({0, 1}, 1).ok());
  EXPECT_FALSE(system.HasUniverseSet());
  ASSERT_TRUE(system.AddSet({0, 1, 2}, 1).ok());
  EXPECT_TRUE(system.HasUniverseSet());
}

TEST(SetSystemTest, InvertedIndexMapsElementsToSets) {
  SetSystem system(3);
  ASSERT_TRUE(system.AddSet({0, 1}, 1).ok());
  ASSERT_TRUE(system.AddSet({1, 2}, 1).ok());
  const auto& inv = system.InvertedIndex();
  ASSERT_EQ(inv.size(), 3u);
  EXPECT_EQ(inv[0], (std::vector<SetId>{0}));
  EXPECT_EQ(inv[1], (std::vector<SetId>{0, 1}));
  EXPECT_EQ(inv[2], (std::vector<SetId>{1}));
}

TEST(SetSystemTest, InvertedIndexInvalidatedByAddSet) {
  SetSystem system(2);
  ASSERT_TRUE(system.AddSet({0}, 1).ok());
  EXPECT_EQ(system.InvertedIndex()[1].size(), 0u);
  ASSERT_TRUE(system.AddSet({1}, 1).ok());
  EXPECT_EQ(system.InvertedIndex()[1].size(), 1u);
}

TEST(CoverageTargetTest, ExactFractionsHitExactCounts) {
  EXPECT_EQ(SetSystem::CoverageTarget(9.0 / 16.0, 16), 9u);
  EXPECT_EQ(SetSystem::CoverageTarget(0.5, 10), 5u);
  EXPECT_EQ(SetSystem::CoverageTarget(1.0, 7), 7u);
  EXPECT_EQ(SetSystem::CoverageTarget(0.0, 7), 0u);
}

TEST(CoverageTargetTest, RoundsUpStrictFractions) {
  EXPECT_EQ(SetSystem::CoverageTarget(0.3, 10), 3u);
  EXPECT_EQ(SetSystem::CoverageTarget(0.31, 10), 4u);
  EXPECT_EQ(SetSystem::CoverageTarget(0.301, 1000), 301u);
}

TEST(CoverageTargetTest, RobustToFloatDustAtScale) {
  // 0.3 * 700000 = 209999.99999999997 in doubles; must not round to 210001.
  EXPECT_EQ(SetSystem::CoverageTarget(0.3, 700'000), 210'000u);
  EXPECT_EQ(SetSystem::CoverageTarget(1.0 / 3.0, 3'000'000), 1'000'000u);
}

TEST(BetterGainTest, ComparesByCrossMultiplication) {
  EXPECT_TRUE(BetterGain(8, 24, 16, 96));   // 1/3 > 1/6
  EXPECT_FALSE(BetterGain(16, 96, 8, 24));
  EXPECT_FALSE(BetterGain(1, 2, 2, 4));     // equal gains
  EXPECT_FALSE(BetterGain(2, 4, 1, 2));
}

TEST(BetterGainTest, ZeroCostBeatsFiniteCost) {
  EXPECT_TRUE(BetterGain(1, 0.0, 100, 1.0));
  EXPECT_FALSE(BetterGain(100, 1.0, 1, 0.0));
  EXPECT_TRUE(BetterGain(3, 0.0, 2, 0.0));  // both free: by count
  EXPECT_FALSE(BetterGain(2, 0.0, 3, 0.0));
}

TEST(BetterGainTest, ZeroCountNeverWins) {
  EXPECT_FALSE(BetterGain(0, 0.0, 1, 5.0));
  EXPECT_FALSE(BetterGain(0, 1.0, 1, 100.0));
}

}  // namespace
}  // namespace scwsc
