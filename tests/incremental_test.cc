#include "src/ext/incremental.h"

#include "src/common/bitset.h"

#include "gtest/gtest.h"
#include "src/gen/lbl_synth.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using ext::IncrementalCwsc;
using ext::IncrementalOptions;
using ext::RepairPolicy;
using pattern::CostFunction;
using pattern::CostKind;

std::vector<std::vector<std::string>> ToRows(const Table& t, std::size_t lo,
                                             std::size_t hi) {
  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = lo; r < hi && r < t.num_rows(); ++r) {
    std::vector<std::string> row;
    for (std::size_t a = 0; a < t.num_attributes(); ++a) {
      row.push_back(t.value_name(static_cast<RowId>(r), a));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<double> ToMeasures(const Table& t, std::size_t lo,
                               std::size_t hi) {
  std::vector<double> m;
  for (std::size_t r = lo; r < hi && r < t.num_rows(); ++r) {
    m.push_back(t.measure(static_cast<RowId>(r)));
  }
  return m;
}

IncrementalOptions Opts(RepairPolicy policy) {
  IncrementalOptions opts;
  opts.k = 6;
  opts.coverage_fraction = 0.4;
  opts.policy = policy;
  return opts;
}

class IncrementalTest : public ::testing::TestWithParam<RepairPolicy> {};

TEST_P(IncrementalTest, SolutionStaysFeasibleAcrossBatches) {
  gen::LblSynthSpec spec;
  spec.num_rows = 1200;
  spec.seed = 21;
  auto trace = gen::MakeLblSynth(spec);
  ASSERT_TRUE(trace.ok());

  IncrementalCwsc inc({"protocol", "localhost", "remotehost", "endstate",
                       "flags"},
                      "session_length", CostFunction(CostKind::kMax),
                      Opts(GetParam()));

  const std::size_t batch = 200;
  for (std::size_t lo = 0; lo < trace->num_rows(); lo += batch) {
    SCWSC_ASSERT_OK(inc.Append(ToRows(*trace, lo, lo + batch),
                               ToMeasures(*trace, lo, lo + batch)));
    ASSERT_TRUE(inc.table().has_value());
    const std::size_t n = inc.table()->num_rows();
    const std::size_t target = SetSystem::CoverageTarget(0.4, n);
    EXPECT_GE(inc.solution().covered, target) << "after " << n << " rows";
    EXPECT_LE(inc.solution().patterns.size(), 6u);
  }
  EXPECT_EQ(inc.num_rows(), trace->num_rows());
  EXPECT_EQ(inc.stats().batches, (trace->num_rows() + batch - 1) / batch);
}

TEST_P(IncrementalTest, CoverageAccountingMatchesDirectRecount) {
  gen::LblSynthSpec spec;
  spec.num_rows = 400;
  spec.seed = 5;
  auto trace = gen::MakeLblSynth(spec);
  ASSERT_TRUE(trace.ok());

  IncrementalCwsc inc({"protocol", "localhost", "remotehost", "endstate",
                       "flags"},
                      "session_length", CostFunction(CostKind::kMax),
                      Opts(GetParam()));
  SCWSC_ASSERT_OK(inc.Append(ToRows(*trace, 0, 400), ToMeasures(*trace, 0, 400)));

  const Table& t = *inc.table();
  DynamicBitset covered(t.num_rows());
  for (const auto& p : inc.solution().patterns) {
    for (RowId r = 0; r < t.num_rows(); ++r) {
      if (p.Matches(t, r)) covered.set(r);
    }
  }
  EXPECT_EQ(inc.solution().covered, covered.count());
}

INSTANTIATE_TEST_SUITE_P(Policies, IncrementalTest,
                         ::testing::Values(RepairPolicy::kRecompute,
                                           RepairPolicy::kRepair),
                         [](const ::testing::TestParamInfo<RepairPolicy>& i) {
                           return i.param == RepairPolicy::kRecompute
                                      ? "Recompute"
                                      : "Repair";
                         });

TEST(IncrementalTest, RepairPolicyAvoidsSomeFullRecomputes) {
  gen::LblSynthSpec spec;
  spec.num_rows = 1500;
  spec.seed = 33;
  auto trace = gen::MakeLblSynth(spec);
  ASSERT_TRUE(trace.ok());

  IncrementalCwsc repair({"protocol", "localhost", "remotehost", "endstate",
                          "flags"},
                         "session_length", CostFunction(CostKind::kMax),
                         Opts(RepairPolicy::kRepair));
  const std::size_t batch = 150;
  for (std::size_t lo = 0; lo < trace->num_rows(); lo += batch) {
    SCWSC_ASSERT_OK(repair.Append(ToRows(*trace, lo, lo + batch),
                                  ToMeasures(*trace, lo, lo + batch)));
  }
  // Repair mode should resolve at least one batch without a full solve
  // (either a no-op or a patch).
  EXPECT_GT(repair.stats().repairs + repair.stats().no_op_batches, 0u)
      << "repairs=" << repair.stats().repairs
      << " no-ops=" << repair.stats().no_op_batches
      << " full=" << repair.stats().full_recomputes;
}

TEST(IncrementalTest, RejectsMalformedBatches) {
  IncrementalCwsc inc({"a", "b"}, "m", CostFunction(CostKind::kMax),
                      IncrementalOptions{});
  EXPECT_TRUE(inc.Append({{"x", "y"}}, {}).IsInvalidArgument());
  EXPECT_TRUE(inc.Append({{"x"}}, {1.0}).IsInvalidArgument());
}

TEST(IncrementalTest, EmptyBeforeFirstAppend) {
  IncrementalCwsc inc({"a"}, "m", CostFunction(CostKind::kMax),
                      IncrementalOptions{});
  EXPECT_FALSE(inc.table().has_value());
  EXPECT_TRUE(inc.solution().patterns.empty());
  EXPECT_EQ(inc.num_rows(), 0u);
}

TEST(IncrementalTest, SingleRowStream) {
  IncrementalOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 1.0;
  IncrementalCwsc inc({"a"}, "m", CostFunction(CostKind::kMax), opts);
  SCWSC_ASSERT_OK(inc.Append({{"x"}}, {5.0}));
  EXPECT_EQ(inc.solution().covered, 1u);
  SCWSC_ASSERT_OK(inc.Append({{"y"}}, {7.0}));
  EXPECT_EQ(inc.solution().covered, 2u);
  EXPECT_LE(inc.solution().patterns.size(), 2u);
}

}  // namespace
}  // namespace scwsc
