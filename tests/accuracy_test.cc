// Tests for the dual-fitting accuracy certificate (core/accuracy.h): the
// instance-specific approximation factor replayed from a selection order.

#include "src/core/accuracy.h"

#include "gtest/gtest.h"
#include "src/core/set_system.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

TEST(AccuracyTest, PerfectSelectionCertifiesRatioOne) {
  SetSystem system(2);
  SCWSC_ASSERT_OK(system.AddSet({0, 1}, 2.0).status());  // A
  SCWSC_ASSERT_OK(system.AddSet({0}, 1.0).status());     // B
  // Selecting A first prices both elements at 1.0. A's mass is 2/2 = 1,
  // B's is 1/1 = 1 — the prices are already dual feasible, so the solution
  // is certified optimal.
  EXPECT_DOUBLE_EQ(EstimateAccuracyRatio(system, {0}), 1.0);
}

TEST(AccuracyTest, GreedyOrderYieldsKnownGamma) {
  SetSystem system(2);
  SCWSC_ASSERT_OK(system.AddSet({0, 1}, 2.0).status());  // A
  SCWSC_ASSERT_OK(system.AddSet({0}, 1.0).status());     // B
  // Selecting B first prices element 0 at 1.0; A then newly covers only
  // element 1 at price 2.0. A's mass is (1 + 2) / 2 = 1.5, B's is 1.0, so
  // gamma = 1.5: the replayed order's cost is within 1.5x of OPT.
  EXPECT_DOUBLE_EQ(EstimateAccuracyRatio(system, {1, 0}), 1.5);
}

TEST(AccuracyTest, RedundantSelectionsContributeNothing) {
  SetSystem system(3);
  SCWSC_ASSERT_OK(system.AddSet({0, 1, 2}, 3.0).status());
  SCWSC_ASSERT_OK(system.AddSet({0, 1}, 5.0).status());
  // The second pick covers nothing new, so it adds no price mass; the
  // certificate depends only on the first-coverage prices. Expensive set 1
  // holds mass 2.0 against cost 5.0 — no overshoot, so gamma clamps to 1.
  EXPECT_DOUBLE_EQ(EstimateAccuracyRatio(system, {0, 1}), 1.0);
}

TEST(AccuracyTest, EmptySelectionHasNoEstimate) {
  SetSystem system(2);
  SCWSC_ASSERT_OK(system.AddSet({0, 1}, 1.0).status());
  EXPECT_DOUBLE_EQ(EstimateAccuracyRatio(system, {}), 0.0);
}

TEST(AccuracyTest, ZeroCostInstancesHaveNoEstimate) {
  SetSystem system(2);
  SCWSC_ASSERT_OK(system.AddSet({0, 1}, 0.0).status());
  // Free sets generate no price mass; gamma is undefined, reported as 0.
  EXPECT_DOUBLE_EQ(EstimateAccuracyRatio(system, {0}), 0.0);
}

TEST(AccuracyTest, ForeignIdsAreIgnoredDefensively) {
  SetSystem system(2);
  SCWSC_ASSERT_OK(system.AddSet({0, 1}, 2.0).status());
  EXPECT_DOUBLE_EQ(EstimateAccuracyRatio(system, {7, 0}), 1.0);
}

TEST(AccuracyTest, RatioNeverDipsBelowOne) {
  // Cheap universe set selected after an expensive partial cover: the
  // price mass of the cheap set can exceed its cost, so gamma > 1; the
  // clamp guarantees the reported factor is never < 1 (which would claim
  // better-than-optimal).
  SetSystem system(4);
  SCWSC_ASSERT_OK(system.AddSet({0, 1, 2, 3}, 1.0).status());
  SCWSC_ASSERT_OK(system.AddSet({0, 1, 2}, 9.0).status());
  const double gamma = EstimateAccuracyRatio(system, {1, 0});
  EXPECT_GE(gamma, 1.0);
}

}  // namespace
}  // namespace scwsc
