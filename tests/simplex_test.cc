#include "src/lp/simplex.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/common/rng.h"

namespace scwsc {
namespace {

using lp::Constraint;
using lp::LpProblem;
using lp::Relation;
using lp::SolveLp;

Constraint Row(std::vector<double> coeffs, Relation rel, double rhs) {
  Constraint c;
  c.coefficients = std::move(coeffs);
  c.relation = rel;
  c.rhs = rhs;
  return c;
}

TEST(SimplexTest, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), value 36.
  LpProblem p;
  p.num_variables = 2;
  p.objective = {-3.0, -5.0};  // minimize the negation
  p.constraints = {Row({1, 0}, Relation::kLessEqual, 4),
                   Row({0, 2}, Relation::kLessEqual, 12),
                   Row({3, 2}, Relation::kLessEqual, 18)};
  auto sol = SolveLp(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -36.0, 1e-7);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol->x[1], 6.0, 1e-7);
}

TEST(SimplexTest, HandlesGreaterEqualAndEquality) {
  // min x + 2y s.t. x + y >= 3, x - y = 1, x,y >= 0 => (2, 1), value 4.
  LpProblem p;
  p.num_variables = 2;
  p.objective = {1.0, 2.0};
  p.constraints = {Row({1, 1}, Relation::kGreaterEqual, 3),
                   Row({1, -1}, Relation::kEqual, 1)};
  auto sol = SolveLp(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 4.0, 1e-7);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol->x[1], 1.0, 1e-7);
}

TEST(SimplexTest, NegativeRhsIsNormalized) {
  // min x s.t. -x <= -5  (i.e. x >= 5) => 5.
  LpProblem p;
  p.num_variables = 1;
  p.objective = {1.0};
  p.constraints = {Row({-1}, Relation::kLessEqual, -5)};
  auto sol = SolveLp(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->x[0], 5.0, 1e-7);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // x <= 1 and x >= 3.
  LpProblem p;
  p.num_variables = 1;
  p.objective = {1.0};
  p.constraints = {Row({1}, Relation::kLessEqual, 1),
                   Row({1}, Relation::kGreaterEqual, 3)};
  EXPECT_TRUE(SolveLp(p).status().IsInfeasible());
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x s.t. x >= 1: unbounded below.
  LpProblem p;
  p.num_variables = 1;
  p.objective = {-1.0};
  p.constraints = {Row({1}, Relation::kGreaterEqual, 1)};
  auto sol = SolveLp(p);
  ASSERT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsInternal());
  EXPECT_NE(sol.status().message().find("unbounded"), std::string::npos);
}

TEST(SimplexTest, DegenerateConstraintsDoNotCycle) {
  // Classic degenerate corner; Bland's rule must terminate.
  LpProblem p;
  p.num_variables = 2;
  p.objective = {-1.0, -1.0};
  p.constraints = {Row({1, 0}, Relation::kLessEqual, 1),
                   Row({0, 1}, Relation::kLessEqual, 1),
                   Row({1, 1}, Relation::kLessEqual, 1),
                   Row({1, 1}, Relation::kLessEqual, 1)};
  auto sol = SolveLp(p);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, -1.0, 1e-7);
}

TEST(SimplexTest, ValidatesInput) {
  LpProblem p;
  p.num_variables = 2;
  p.objective = {1.0};  // wrong arity
  EXPECT_TRUE(SolveLp(p).status().IsInvalidArgument());
  p.objective = {1.0, std::nan("")};
  EXPECT_TRUE(SolveLp(p).status().IsInvalidArgument());
  p.objective = {1.0, 1.0};
  p.constraints = {Row({1}, Relation::kLessEqual, 1)};  // wrong arity
  EXPECT_TRUE(SolveLp(p).status().IsInvalidArgument());
}

TEST(SimplexTest, ZeroConstraintProblemIsTrivial) {
  LpProblem p;
  p.num_variables = 2;
  p.objective = {1.0, 1.0};
  auto sol = SolveLp(p);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 0.0, 1e-9);
}

TEST(SimplexTest, RandomFeasibleBoundedLpsSatisfyConstraints) {
  // Random LPs with box constraints are always feasible (x = 0) and
  // bounded; the returned point must satisfy every constraint and beat the
  // origin when any objective coefficient is negative.
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t vars = 2 + rng.NextBounded(4);
    LpProblem p;
    p.num_variables = vars;
    for (std::size_t v = 0; v < vars; ++v) {
      p.objective.push_back(rng.NextDouble(-5.0, 5.0));
      std::vector<double> box(vars, 0.0);
      box[v] = 1.0;
      p.constraints.push_back(
          Row(std::move(box), Relation::kLessEqual, rng.NextDouble(0.5, 4.0)));
    }
    for (int extra = 0; extra < 3; ++extra) {
      std::vector<double> coeffs;
      for (std::size_t v = 0; v < vars; ++v) {
        coeffs.push_back(rng.NextDouble(0.0, 2.0));
      }
      p.constraints.push_back(
          Row(std::move(coeffs), Relation::kLessEqual, rng.NextDouble(1.0, 6.0)));
    }
    auto sol = SolveLp(p);
    ASSERT_TRUE(sol.ok()) << "trial " << trial << ": "
                          << sol.status().ToString();
    for (const auto& con : p.constraints) {
      double lhs = 0.0;
      for (std::size_t v = 0; v < vars; ++v) {
        lhs += con.coefficients[v] * sol->x[v];
      }
      EXPECT_LE(lhs, con.rhs + 1e-6) << "trial " << trial;
    }
    for (std::size_t v = 0; v < vars; ++v) {
      EXPECT_GE(sol->x[v], -1e-9);
    }
    EXPECT_LE(sol->objective, 1e-9);  // origin is feasible with value 0
  }
}

}  // namespace
}  // namespace scwsc
