#include "src/pattern/pattern_system.h"

#include <numeric>

#include "gtest/gtest.h"
#include "src/gen/toy.h"
#include "src/pattern/benefit_index.h"
#include "src/table/builder.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using pattern::BenefitIndex;
using pattern::CanonicalLess;
using pattern::CostFunction;
using pattern::CostKind;
using pattern::Pattern;
using pattern::PatternSystem;
using test::MakePattern;

TEST(BenefitIndexTest, PostingsPartitionRows) {
  Table table = gen::MakeEntitiesTable();
  BenefitIndex index(table);
  std::size_t total = 0;
  for (ValueId v = 0; v < table.domain_size(0); ++v) {
    total += index.Postings(0, v).size();
  }
  EXPECT_EQ(total, table.num_rows());
}

TEST(BenefitIndexTest, BenMatchesDirectScan) {
  Table table = gen::MakeEntitiesTable();
  BenefitIndex index(table);
  const std::vector<std::vector<std::string>> patterns = {
      {"*", "*"}, {"A", "*"}, {"*", "South"}, {"B", "South"}, {"A", "East"}};
  for (const auto& strs : patterns) {
    Pattern p = MakePattern(table, strs);
    std::vector<RowId> expected;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      if (p.Matches(table, r)) expected.push_back(r);
    }
    EXPECT_EQ(index.Ben(p), expected) << p.ToString(table);
    EXPECT_EQ(index.BenefitCount(p), expected.size());
  }
}

TEST(BenefitIndexTest, AllWildcardsBenIsEveryRow) {
  Table table = gen::MakeEntitiesTable();
  BenefitIndex index(table);
  auto ben = index.Ben(Pattern::AllWildcards(2));
  std::vector<RowId> expected(table.num_rows());
  std::iota(expected.begin(), expected.end(), RowId{0});
  EXPECT_EQ(ben, expected);
}

TEST(PatternSystemTest, BuildsSetSystemAlignedWithPatterns) {
  Table table = gen::MakeEntitiesTable();
  CostFunction cost(CostKind::kMax);
  auto system = PatternSystem::Build(table, cost);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->num_patterns(), 24u);
  EXPECT_EQ(system->set_system().num_sets(), 24u);
  EXPECT_EQ(system->set_system().num_elements(), 16u);
  EXPECT_TRUE(system->set_system().HasUniverseSet());
  for (SetId id = 0; id < system->num_patterns(); ++id) {
    const auto& s = system->set_system().set(id);
    const Pattern& p = system->pattern(id);
    // Benefit sets agree with matching.
    for (ElementId e : s.elements) {
      EXPECT_TRUE(p.Matches(table, static_cast<RowId>(e)));
    }
    EXPECT_EQ(s.elements.size(),
              BenefitIndex(table).BenefitCount(p));
  }
}

TEST(PatternSystemTest, SetIdsFollowCanonicalOrder) {
  Table table = gen::MakeEntitiesTable();
  CostFunction cost(CostKind::kMax);
  auto system = PatternSystem::Build(table, cost);
  ASSERT_TRUE(system.ok());
  for (SetId id = 0; id + 1 < system->num_patterns(); ++id) {
    EXPECT_TRUE(
        CanonicalLess(system->pattern(id), system->pattern(id + 1)));
  }
}

TEST(PatternSystemTest, SumCostFunctionChangesWeights) {
  Table table = gen::MakeEntitiesTable();
  auto max_system = PatternSystem::Build(table, CostFunction(CostKind::kMax));
  auto sum_system = PatternSystem::Build(table, CostFunction(CostKind::kSum));
  ASSERT_TRUE(max_system.ok());
  ASSERT_TRUE(sum_system.ok());
  // {B, South} covers measures {2, 1}: max 2, sum 3.
  const Pattern p = MakePattern(table, {"B", "South"});
  for (SetId id = 0; id < max_system->num_patterns(); ++id) {
    if (max_system->pattern(id) == p) {
      EXPECT_DOUBLE_EQ(max_system->set_system().set(id).cost, 2.0);
      EXPECT_DOUBLE_EQ(sum_system->set_system().set(id).cost, 3.0);
    }
  }
}

TEST(PatternSystemTest, RequiresMeasure) {
  TableBuilder builder({"x"});
  SCWSC_ASSERT_OK(builder.AddRow({"a"}));
  Table table = std::move(builder).Build();
  EXPECT_TRUE(PatternSystem::Build(table, CostFunction(CostKind::kMax))
                  .status()
                  .IsInvalidArgument());
}

TEST(PatternSystemTest, ToPatternSolutionTranslatesIds) {
  Table table = gen::MakeEntitiesTable();
  auto system = PatternSystem::Build(table, CostFunction(CostKind::kMax));
  ASSERT_TRUE(system.ok());
  Solution solution;
  solution.sets = {0, 5};
  solution.total_cost = 12.0;
  solution.covered = 3;
  auto ps = system->ToPatternSolution(solution);
  ASSERT_EQ(ps.patterns.size(), 2u);
  EXPECT_EQ(ps.patterns[0], system->pattern(0));
  EXPECT_EQ(ps.patterns[1], system->pattern(5));
  EXPECT_DOUBLE_EQ(ps.total_cost, 12.0);
  EXPECT_EQ(ps.covered, 3u);
}

}  // namespace
}  // namespace scwsc
