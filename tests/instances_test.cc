#include "src/core/instances.h"

#include <set>

#include "src/common/bitset.h"

#include "gtest/gtest.h"
#include "src/core/cwsc.h"
#include "src/core/solution.h"

namespace scwsc {
namespace {

TEST(CounterexampleTest, BuildsExpectedStructure) {
  CounterexampleSpec spec;
  spec.big_set_size = 20;
  spec.small_set_multiplier = 2;
  spec.k = 3;
  auto system = MakeBudgetedCounterexample(spec);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->num_elements(), 60u);          // C*k
  EXPECT_EQ(system->num_sets(), 2u * 3u + 3u);     // c*k singletons + k blocks
  // Singletons have weight 1 and size 1.
  for (SetId id = 0; id < 6; ++id) {
    EXPECT_EQ(system->set(id).elements.size(), 1u);
    EXPECT_DOUBLE_EQ(system->set(id).cost, 1.0);
  }
  // Blocks have weight C+1, size C, and partition the universe.
  DynamicBitset covered(system->num_elements());
  for (SetId id = 6; id < 9; ++id) {
    EXPECT_EQ(system->set(id).elements.size(), 20u);
    EXPECT_DOUBLE_EQ(system->set(id).cost, 21.0);
    for (ElementId e : system->set(id).elements) {
      EXPECT_TRUE(covered.set(e)) << "blocks overlap";
    }
  }
  EXPECT_TRUE(covered.all());
}

TEST(CounterexampleTest, OptionalUniverseSet) {
  CounterexampleSpec spec;
  spec.big_set_size = 10;
  spec.small_set_multiplier = 2;
  spec.k = 2;
  spec.add_universe_set = true;
  spec.universe_cost = 500.0;
  auto system = MakeBudgetedCounterexample(spec);
  ASSERT_TRUE(system.ok());
  EXPECT_TRUE(system->HasUniverseSet());
}

TEST(CounterexampleTest, ValidatesSpec) {
  CounterexampleSpec spec;
  spec.big_set_size = 0;
  EXPECT_TRUE(MakeBudgetedCounterexample(spec).status().IsInvalidArgument());
  spec = CounterexampleSpec{};
  spec.small_set_multiplier = spec.big_set_size;  // needs c < C
  EXPECT_TRUE(MakeBudgetedCounterexample(spec).status().IsInvalidArgument());
}

// CWSC sidesteps the §III trap: its qualification threshold forces the
// blocks, achieving 100% coverage with exactly k sets.
TEST(CounterexampleTest, CwscSolvesTheCounterexampleInstance) {
  CounterexampleSpec spec;
  spec.big_set_size = 50;
  spec.small_set_multiplier = 3;
  spec.k = 4;
  auto system = MakeBudgetedCounterexample(spec);
  ASSERT_TRUE(system.ok());
  auto solution = RunCwsc(*system, {spec.k, 1.0});
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->covered, system->num_elements());
  EXPECT_EQ(solution->sets.size(), spec.k);
}

TEST(RandomSetSystemTest, RespectsSpec) {
  Rng rng(5);
  RandomSystemSpec spec;
  spec.num_elements = 40;
  spec.num_sets = 25;
  spec.max_set_size = 6;
  spec.min_cost = 2.0;
  spec.max_cost = 9.0;
  auto system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->num_elements(), 40u);
  EXPECT_EQ(system->num_sets(), 26u);  // +1 universe
  EXPECT_TRUE(system->HasUniverseSet());
  for (SetId id = 0; id + 1 < system->num_sets(); ++id) {
    const auto& s = system->set(id);
    EXPECT_GE(s.elements.size(), 1u);
    EXPECT_LE(s.elements.size(), 6u);
    EXPECT_GE(s.cost, 2.0);
    EXPECT_LE(s.cost, 9.0);
  }
}

TEST(RandomSetSystemTest, DeterministicInSeed) {
  RandomSystemSpec spec;
  Rng rng1(11), rng2(11);
  auto a = RandomSetSystem(spec, rng1);
  auto b = RandomSetSystem(spec, rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_sets(), b->num_sets());
  for (SetId id = 0; id < a->num_sets(); ++id) {
    EXPECT_EQ(a->set(id).elements, b->set(id).elements);
    EXPECT_DOUBLE_EQ(a->set(id).cost, b->set(id).cost);
  }
}

TEST(RandomSetSystemTest, DuplicateCostProbabilityCreatesTies) {
  Rng rng(13);
  RandomSystemSpec spec;
  spec.num_sets = 100;
  spec.duplicate_cost_probability = 0.8;
  auto system = RandomSetSystem(spec, rng);
  ASSERT_TRUE(system.ok());
  std::set<double> distinct;
  for (const auto& s : system->sets()) distinct.insert(s.cost);
  EXPECT_LT(distinct.size(), system->num_sets() / 2);
}

TEST(RandomSetSystemTest, ValidatesSpec) {
  Rng rng(1);
  RandomSystemSpec spec;
  spec.num_elements = 0;
  EXPECT_TRUE(RandomSetSystem(spec, rng).status().IsInvalidArgument());
  spec = RandomSystemSpec{};
  spec.max_set_size = 0;
  EXPECT_TRUE(RandomSetSystem(spec, rng).status().IsInvalidArgument());
  spec = RandomSystemSpec{};
  spec.min_cost = 5;
  spec.max_cost = 1;
  EXPECT_TRUE(RandomSetSystem(spec, rng).status().IsInvalidArgument());
}

}  // namespace
}  // namespace scwsc
