// Cross-module integration tests: CSV -> table -> pattern system -> every
// solver -> audited solutions, on both the paper's toy data and a synthetic
// trace, plus solver-vs-solver quality relations at a scale where they are
// meaningful.

#include <cmath>
#include <numeric>
#include <sstream>

#include "gtest/gtest.h"
#include "src/core/baselines.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/exact.h"
#include "src/gen/lbl_synth.h"
#include "src/gen/perturb.h"
#include "src/gen/toy.h"
#include "src/pattern/opt_cmc.h"
#include "src/pattern/opt_cwsc.h"
#include "src/pattern/pattern_system.h"
#include "src/table/csv.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using pattern::CostFunction;
using pattern::CostKind;
using pattern::PatternSystem;

TEST(IntegrationTest, CsvRoundTripFeedsSolversUnchanged) {
  Table original = gen::MakeEntitiesTable();
  std::ostringstream buffer;
  SCWSC_ASSERT_OK(csv::Write(original, buffer));
  std::istringstream in(buffer.str());
  csv::ReadOptions read_opts;
  read_opts.measure_column = "Cost";
  auto restored = csv::Read(in, read_opts);
  ASSERT_TRUE(restored.ok());

  CostFunction cost(CostKind::kMax);
  CwscOptions opts{2, 9.0 / 16.0};
  auto from_original = pattern::RunOptimizedCwsc(original, cost, opts);
  auto from_restored = pattern::RunOptimizedCwsc(*restored, cost, opts);
  ASSERT_TRUE(from_original.ok());
  ASSERT_TRUE(from_restored.ok());
  ASSERT_EQ(from_original->patterns.size(), from_restored->patterns.size());
  EXPECT_NEAR(from_original->total_cost, from_restored->total_cost, 1e-12);
}

TEST(IntegrationTest, SolverQualityOrderHoldsOnSyntheticTrace) {
  gen::LblSynthSpec spec;
  spec.num_rows = 3000;
  spec.seed = 71;
  auto table = gen::MakeLblSynth(spec);
  ASSERT_TRUE(table.ok());
  const std::size_t k = 10;
  const double fraction = 0.3;

  // Under the sum cost the all-wildcards pattern is enormously expensive,
  // so the §VI-C gap is strict: max coverage grabs the biggest patterns
  // regardless of cost while CWSC covers the same fraction far cheaper.
  auto sum_system =
      PatternSystem::Build(*table, CostFunction(CostKind::kSum));
  ASSERT_TRUE(sum_system.ok());
  auto cwsc_sum = RunCwsc(sum_system->set_system(), {k, fraction});
  ASSERT_TRUE(cwsc_sum.ok());
  EXPECT_TRUE(
      SatisfiesConstraints(sum_system->set_system(), *cwsc_sum, k, fraction));
  GreedyMaxCoverageOptions mc;
  mc.k = k;
  auto maxcov_sum = RunGreedyMaxCoverage(sum_system->set_system(), mc);
  ASSERT_TRUE(maxcov_sum.ok());
  EXPECT_GT(maxcov_sum->total_cost, 2.0 * cwsc_sum->total_cost);

  // Under the max cost a heavy-tailed measure can make the ALL pattern
  // gain-optimal for both, so only the weak direction is guaranteed.
  auto max_system =
      PatternSystem::Build(*table, CostFunction(CostKind::kMax));
  ASSERT_TRUE(max_system.ok());
  auto cwsc_max = RunCwsc(max_system->set_system(), {k, fraction});
  auto maxcov_max = RunGreedyMaxCoverage(max_system->set_system(), mc);
  ASSERT_TRUE(cwsc_max.ok());
  ASSERT_TRUE(maxcov_max.ok());
  EXPECT_GE(maxcov_max->total_cost, cwsc_max->total_cost);

  // Plain weighted set cover needs more than k sets at high coverage
  // (Table VI's motivation) -- check at 0.8.
  GreedyWscOptions wsc;
  wsc.coverage_fraction = 0.8;
  auto plain = RunGreedyWeightedSetCover(sum_system->set_system(), wsc);
  ASSERT_TRUE(plain.ok());
  EXPECT_GT(plain->sets.size(), k);
}

TEST(IntegrationTest, OptimizedSolversAgreeWithUnoptimizedAtScale) {
  gen::LblSynthSpec spec;
  spec.num_rows = 2500;
  spec.seed = 72;
  auto table = gen::MakeLblSynth(spec);
  ASSERT_TRUE(table.ok());
  CostFunction cost(CostKind::kMax);
  auto system = PatternSystem::Build(*table, cost);
  ASSERT_TRUE(system.ok());

  CwscOptions opts{10, 0.3};
  auto unopt = RunCwsc(system->set_system(), opts);
  auto opt = pattern::RunOptimizedCwsc(*table, cost, opts);
  ASSERT_TRUE(unopt.ok());
  ASSERT_TRUE(opt.ok());
  auto unopt_patterns = system->ToPatternSolution(*unopt);
  ASSERT_EQ(opt->patterns.size(), unopt_patterns.patterns.size());
  for (std::size_t i = 0; i < opt->patterns.size(); ++i) {
    EXPECT_EQ(opt->patterns[i], unopt_patterns.patterns[i]) << "pick " << i;
  }
}

TEST(IntegrationTest, CwscNearOptimalOnSmallSamples) {
  // §VI-D: on small samples the greedy solutions are optimal or nearly so.
  gen::LblSynthSpec spec;
  spec.num_rows = 60;
  spec.seed = 73;
  spec.num_localhosts = 12;
  spec.num_remotehosts = 15;
  auto full = gen::MakeLblSynth(spec);
  ASSERT_TRUE(full.ok());
  auto table = full->ProjectAttributes({0, 1, 3});  // protocol, lhost, state
  ASSERT_TRUE(table.ok());
  CostFunction cost(CostKind::kMax);
  auto system = PatternSystem::Build(*table, cost);
  ASSERT_TRUE(system.ok());

  ExactOptions exact_opts;
  exact_opts.k = 4;
  exact_opts.coverage_fraction = 0.5;
  auto optimal = SolveExact(system->set_system(), exact_opts);
  ASSERT_TRUE(optimal.ok()) << optimal.status().ToString();

  auto greedy = RunCwsc(system->set_system(), {4, 0.5});
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(greedy->total_cost, optimal->solution.total_cost - 1e-9);
  EXPECT_LE(greedy->total_cost, 2.0 * optimal->solution.total_cost + 1e-9)
      << "greedy should be near-optimal on small samples";
}

TEST(IntegrationTest, PerturbedMeasuresKeepCwscCompetitiveWithCmc) {
  // §VI-B: CWSC's cost stays at or below CMC's across measure rewrites.
  gen::LblSynthSpec spec;
  spec.num_rows = 1500;
  spec.seed = 74;
  auto base = gen::MakeLblSynth(spec);
  ASSERT_TRUE(base.ok());
  Rng rng(75);
  for (double delta : {0.25, 0.75}) {
    auto table = gen::UniformPerturbMeasure(*base, delta, rng);
    ASSERT_TRUE(table.ok());
    CostFunction cost(CostKind::kMax);

    auto cwsc = pattern::RunOptimizedCwsc(*table, cost, {10, 0.3});
    ASSERT_TRUE(cwsc.ok());

    CmcOptions cmc_opts;
    cmc_opts.k = 10;
    cmc_opts.coverage_fraction = 0.3;
    cmc_opts.relax_coverage = false;  // equal achieved coverage target
    auto cmc = pattern::RunOptimizedCmc(*table, cost, cmc_opts);
    ASSERT_TRUE(cmc.ok());

    // Table IV reports CWSC matching CMC on the authors' trace; the exact
    // relation is data-dependent, so allow a modest margin either way while
    // still catching an order-of-magnitude regression.
    EXPECT_LE(cwsc->total_cost, cmc->total_cost * 1.5)
        << "delta=" << delta;
  }
}

TEST(IntegrationTest, AttributeProjectionShrinksRuntimeInputs) {
  gen::LblSynthSpec spec;
  spec.num_rows = 800;
  spec.seed = 76;
  auto table = gen::MakeLblSynth(spec);
  ASSERT_TRUE(table.ok());
  CostFunction cost(CostKind::kMax);
  std::size_t prev_considered = 0;
  for (std::size_t attrs = 1; attrs <= 5; ++attrs) {
    std::vector<std::size_t> keep(attrs);
    std::iota(keep.begin(), keep.end(), 0u);
    auto projected = table->ProjectAttributes(keep);
    ASSERT_TRUE(projected.ok());
    pattern::PatternStats stats;
    auto solution =
        pattern::RunOptimizedCwsc(*projected, cost, {10, 0.3}, &stats);
    ASSERT_TRUE(solution.ok()) << "attrs=" << attrs;
    if (attrs > 1) {
      EXPECT_GE(stats.patterns_considered, prev_considered / 4)
          << "sanity: considered counts stay in a comparable range";
    }
    prev_considered = stats.patterns_considered;
  }
}

}  // namespace
}  // namespace scwsc
