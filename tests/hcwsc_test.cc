#include "src/hierarchy/hcwsc.h"

#include <limits>

#include "gtest/gtest.h"
#include "src/gen/lbl_synth.h"
#include "src/gen/toy.h"
#include "src/hierarchy/bucketize.h"
#include "src/hierarchy/henumerate.h"
#include "src/pattern/opt_cwsc.h"
#include "src/pattern/pattern_system.h"
#include "src/table/builder.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using hierarchy::AttributeHierarchy;
using hierarchy::EnumerateAllHPatterns;
using hierarchy::HPattern;
using hierarchy::HPatternSystem;
using hierarchy::RunHierarchicalCwsc;
using hierarchy::TableHierarchy;
using pattern::CostFunction;
using pattern::CostKind;

std::vector<std::pair<std::string, std::string>> LocationEdges() {
  return {
      {"West", "Western"},      {"Northwest", "Western"},
      {"Southwest", "Western"}, {"East", "Eastern"},
      {"Northeast", "Eastern"}, {"North", "Central"},
      {"South", "Central"},
  };
}

TableHierarchy ToyHierarchy(const Table& table) {
  auto loc = AttributeHierarchy::Build(table.dictionary(1), LocationEdges());
  EXPECT_TRUE(loc.ok());
  auto th = TableHierarchy::Build(table, {{1, *loc}});
  EXPECT_TRUE(th.ok());
  return std::move(th).value();
}

TEST(HEnumerateTest, FlatHierarchyReproducesFlatEnumeration) {
  Table table = gen::MakeEntitiesTable();
  TableHierarchy flat = TableHierarchy::Flat(table);
  auto hpatterns = EnumerateAllHPatterns(table, flat);
  ASSERT_TRUE(hpatterns.ok());
  auto flat_patterns = pattern::EnumerateAllPatterns(table);
  ASSERT_TRUE(flat_patterns.ok());
  ASSERT_EQ(hpatterns->size(), flat_patterns->size());  // 24 on the toy
  for (std::size_t i = 0; i < hpatterns->size(); ++i) {
    EXPECT_EQ((*hpatterns)[i].rows, (*flat_patterns)[i].rows) << i;
  }
}

TEST(HEnumerateTest, HierarchyAddsRegionPatterns) {
  Table table = gen::MakeEntitiesTable();
  TableHierarchy th = ToyHierarchy(table);
  auto hpatterns = EnumerateAllHPatterns(table, th);
  ASSERT_TRUE(hpatterns.ok());
  // Flat: 24. Regions add {ALL,A,B} x {Western, Eastern, Central} = 9.
  EXPECT_EQ(hpatterns->size(), 33u);
  // Every pattern's rows agree with direct matching.
  for (const auto& ep : *hpatterns) {
    std::vector<RowId> expected;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      if (ep.pattern.Matches(table, th, r)) expected.push_back(r);
    }
    EXPECT_EQ(ep.rows, expected) << ep.pattern.ToString(table, th);
  }
}

TEST(HEnumerateTest, SystemCostsMatchCostFunction) {
  Table table = gen::MakeEntitiesTable();
  TableHierarchy th = ToyHierarchy(table);
  CostFunction cost(CostKind::kMax);
  auto system = HPatternSystem::Build(table, th, cost);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->num_patterns(), 33u);
  EXPECT_TRUE(system->set_system().HasUniverseSet());
}

TEST(HCwscTest, FlatHierarchyMatchesFlatOptimizedCwsc) {
  // With all-flat hierarchies the hierarchical solver must select exactly
  // the flat solver's patterns on the toy table and on synthetic traces.
  Table toy = gen::MakeEntitiesTable();
  TableHierarchy flat_toy = TableHierarchy::Flat(toy);
  CostFunction cost(CostKind::kMax);
  for (std::size_t k : {1u, 2u, 4u}) {
    for (double s : {0.3, 9.0 / 16.0, 0.9}) {
      auto hier = RunHierarchicalCwsc(toy, flat_toy, cost, {k, s});
      auto flat = pattern::RunOptimizedCwsc(toy, cost, {k, s});
      ASSERT_EQ(hier.ok(), flat.ok()) << "k=" << k << " s=" << s;
      if (!hier.ok()) continue;
      ASSERT_EQ(hier->patterns.size(), flat->patterns.size());
      for (std::size_t p = 0; p < hier->patterns.size(); ++p) {
        // Node ids of leaf constraints coincide with flat ValueIds.
        for (std::size_t a = 0; a < toy.num_attributes(); ++a) {
          const bool hw = hier->patterns[p].is_wildcard(a);
          const bool fw = flat->patterns[p].is_wildcard(a);
          ASSERT_EQ(hw, fw);
          if (!hw) {
            EXPECT_EQ(hier->patterns[p].node(a), flat->patterns[p].value(a));
          }
        }
      }
      EXPECT_NEAR(hier->total_cost, flat->total_cost, 1e-9);
      EXPECT_EQ(hier->covered, flat->covered);
    }
  }
}

TEST(HCwscTest, MatchesUnoptimizedCwscOverEnumeratedHierarchy) {
  // The §V-C1 equivalence, lifted to hierarchies: lattice-optimized CWSC
  // equals Fig. 2 over the fully enumerated hierarchical pattern system.
  Table table = gen::MakeEntitiesTable();
  TableHierarchy th = ToyHierarchy(table);
  CostFunction cost(CostKind::kMax);
  auto system = HPatternSystem::Build(table, th, cost);
  ASSERT_TRUE(system.ok());

  for (std::size_t k : {1u, 2u, 3u, 5u}) {
    for (double s : {0.25, 0.5, 9.0 / 16.0, 0.8, 1.0}) {
      CwscOptions opts{k, s};
      auto unopt = RunCwsc(system->set_system(), opts);
      auto opt = RunHierarchicalCwsc(table, th, cost, opts);
      ASSERT_EQ(unopt.ok(), opt.ok()) << "k=" << k << " s=" << s;
      if (!unopt.ok()) continue;
      ASSERT_EQ(opt->patterns.size(), unopt->sets.size())
          << "k=" << k << " s=" << s;
      for (std::size_t p = 0; p < opt->patterns.size(); ++p) {
        EXPECT_EQ(opt->patterns[p], system->pattern(unopt->sets[p]))
            << "k=" << k << " s=" << s << " pick " << p;
      }
      EXPECT_NEAR(opt->total_cost, unopt->total_cost, 1e-9);
    }
  }
}

TEST(HCwscTest, RegionNodeWinsWhenItIsCheaper) {
  // An internal node must be selected when it is the gain-optimal qualified
  // set: cities c1..c4 roll up into two regions; only RegionX's subtree is
  // uniformly cheap, and no single city reaches the coverage threshold.
  TableBuilder builder({"city"}, "m");
  const char* cities[] = {"c1", "c2", "c3", "c4"};
  for (int rep = 0; rep < 2; ++rep) {
    for (int c = 0; c < 4; ++c) {
      SCWSC_ASSERT_OK(
          builder.AddRow({cities[c]}, c == 3 && rep == 1 ? 100.0 : 5.0));
    }
  }
  Table table = std::move(builder).Build();
  auto region = AttributeHierarchy::Build(
      table.dictionary(0), {{"c1", "RegionX"},
                            {"c2", "RegionX"},
                            {"c3", "RegionY"},
                            {"c4", "RegionY"}});
  ASSERT_TRUE(region.ok());
  auto th = TableHierarchy::Build(table, {{0, *region}});
  ASSERT_TRUE(th.ok());

  // k = 1, target 4/8: cities cover 2 rows each (below threshold); RegionX
  // (4 rows, cost 5) beats RegionY (4 rows, cost 100) and ALL (8, 100).
  auto solution = RunHierarchicalCwsc(table, *th,
                                      CostFunction(CostKind::kMax), {1, 0.5});
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  ASSERT_EQ(solution->patterns.size(), 1u);
  EXPECT_EQ(solution->patterns[0].ToString(table, *th), "{city=RegionX}");
  EXPECT_EQ(solution->covered, 4u);
  EXPECT_DOUBLE_EQ(solution->total_cost, 5.0);
}

TEST(HCwscTest, WorksOnSyntheticTraceWithProtocolRollup) {
  gen::LblSynthSpec spec;
  spec.num_rows = 3000;
  spec.seed = 12;
  auto trace = gen::MakeLblSynth(spec);
  ASSERT_TRUE(trace.ok());
  // Roll protocols up into interactive vs batch families.
  std::vector<std::pair<std::string, std::string>> edges;
  for (ValueId v = 0; v < trace->domain_size(0); ++v) {
    const std::string& name = trace->dictionary(0).Name(v);
    const bool interactive =
        name == "telnet" || name == "login" || name == "shell";
    edges.emplace_back(name, interactive ? "interactive" : "batch");
  }
  auto proto = AttributeHierarchy::Build(trace->dictionary(0), edges);
  ASSERT_TRUE(proto.ok());
  auto th = TableHierarchy::Build(*trace, {{0, *proto}});
  ASSERT_TRUE(th.ok());

  pattern::PatternStats stats;
  auto solution = RunHierarchicalCwsc(*trace, *th,
                                      CostFunction(CostKind::kMax),
                                      {10, 0.4}, &stats);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_GE(solution->covered,
            SetSystem::CoverageTarget(0.4, trace->num_rows()));
  EXPECT_LE(solution->patterns.size(), 10u);
  EXPECT_GT(stats.patterns_considered, 0u);
}

TEST(HCwscTest, ValidatesInputs) {
  Table table = gen::MakeEntitiesTable();
  TableHierarchy flat = TableHierarchy::Flat(table);
  CostFunction cost(CostKind::kMax);
  EXPECT_TRUE(RunHierarchicalCwsc(table, flat, cost, {0, 0.5})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunHierarchicalCwsc(table, flat, cost, {2, 1.5})
                  .status()
                  .IsInvalidArgument());
}

TEST(BucketizeTest, EquiDepthBucketsAndRangeHierarchy) {
  Table table = gen::MakeEntitiesTable();
  std::vector<double> ages;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    ages.push_back(static_cast<double>(r * 5 + 10));  // 10, 15, ..., 85
  }
  hierarchy::BucketizeOptions opts;
  opts.num_buckets = 4;
  auto bucketized =
      hierarchy::AppendBucketizedAttribute(table, ages, "age", opts);
  ASSERT_TRUE(bucketized.ok()) << bucketized.status().ToString();
  EXPECT_EQ(bucketized->num_buckets, 4u);
  EXPECT_EQ(bucketized->table.num_attributes(), 3u);
  EXPECT_EQ(bucketized->attribute_index, 2u);
  EXPECT_EQ(bucketized->table.schema().attribute_name(2), "age");
  // Equi-depth: each bucket holds 4 of the 16 rows.
  std::vector<std::size_t> counts(bucketized->table.domain_size(2), 0);
  for (RowId r = 0; r < bucketized->table.num_rows(); ++r) {
    ++counts[bucketized->table.value(r, 2)];
  }
  for (std::size_t c : counts) EXPECT_EQ(c, 4u);
  // The binary merge stops at two roots (a single root would duplicate
  // the ALL wildcard); together they cover every bucket.
  EXPECT_EQ(bucketized->hierarchy.roots().size(), 2u);
  std::size_t root_leaves = 0;
  for (auto root : bucketized->hierarchy.roots()) {
    root_leaves += bucketized->hierarchy.LeafCount(root);
  }
  EXPECT_EQ(root_leaves, 4u);
}

TEST(BucketizeTest, RangePatternsAreSelectable) {
  Table table = gen::MakeEntitiesTable();
  std::vector<double> ages;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    ages.push_back(static_cast<double>(r));
  }
  auto bucketized = hierarchy::AppendBucketizedAttribute(table, ages, "age");
  ASSERT_TRUE(bucketized.ok());
  auto th = TableHierarchy::Build(
      bucketized->table,
      {{bucketized->attribute_index, bucketized->hierarchy}});
  ASSERT_TRUE(th.ok());
  auto solution =
      RunHierarchicalCwsc(bucketized->table, *th,
                          CostFunction(CostKind::kMax), {3, 0.5});
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_GE(solution->covered, 8u);
}

TEST(BucketizeTest, ValidatesInputs) {
  Table table = gen::MakeEntitiesTable();
  EXPECT_TRUE(hierarchy::AppendBucketizedAttribute(table, {1.0}, "x")
                  .status()
                  .IsInvalidArgument());
  std::vector<double> bad(table.num_rows(), 1.0);
  bad[3] = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(hierarchy::AppendBucketizedAttribute(table, bad, "x")
                  .status()
                  .IsInvalidArgument());
  std::vector<double> ok(table.num_rows(), 1.0);
  hierarchy::BucketizeOptions opts;
  opts.num_buckets = 1;
  EXPECT_TRUE(hierarchy::AppendBucketizedAttribute(table, ok, "x", opts)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace scwsc
