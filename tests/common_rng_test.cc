#include "src/common/rng.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace scwsc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::size_t kBuckets = 8;
  constexpr int kDraws = 80'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 0.05 * expected);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianHasApproximatelyUnitMoments) {
  Rng rng(19);
  constexpr int kDraws = 100'000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, LogNormalMatchesTheoreticalMedian) {
  Rng rng(23);
  constexpr int kDraws = 50'000;
  std::vector<double> draws(kDraws);
  for (auto& d : draws) d = rng.NextLogNormal(2.0, 1.0);
  std::nth_element(draws.begin(), draws.begin() + kDraws / 2, draws.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(draws[kDraws / 2], std::exp(2.0), 0.15 * std::exp(2.0));
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(29);
  int truths = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBool(0.25)) ++truths;
  }
  EXPECT_NEAR(truths, kDraws * 0.25, kDraws * 0.02);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ZipfSamplerTest, SkewZeroIsUniform) {
  Rng rng(37);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 40'000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 4.0, kDraws * 0.02);
}

TEST(ZipfSamplerTest, PositiveSkewFavoursSmallIds) {
  Rng rng(41);
  ZipfSampler zipf(100, 1.2);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50'000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], 10 * std::max(1, counts[50]));
}

TEST(ZipfSamplerTest, SamplesStayInDomain) {
  Rng rng(43);
  ZipfSampler zipf(7, 2.0);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

TEST(SplitMix64Test, KnownSequenceProgresses) {
  std::uint64_t state = 0;
  const std::uint64_t a = SplitMix64(state);
  const std::uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
  std::uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), a);  // deterministic
}

}  // namespace
}  // namespace scwsc
