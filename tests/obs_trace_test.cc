// Tests for the trace-span system: nesting/parenting, ordering, thread
// tagging, events, the disabled-session no-op contract, and the Chrome
// trace-event exporter (structure + JSON well-formedness).

#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/export.h"
#include "tests/test_util.h"

namespace scwsc {
namespace obs {
namespace {

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const SpanRecord& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(TraceSessionTest, NestedSpansParentToInnermostOpen) {
  TraceSession session;
  {
    Span outer(&session, "outer");
    {
      Span inner(&session, "inner");
      Span deepest(&session, "deepest");
    }
    Span sibling(&session, "sibling");
  }
  const std::vector<SpanRecord> spans = session.spans();
  ASSERT_EQ(spans.size(), 4u);

  const SpanRecord* outer = FindSpan(spans, "outer");
  const SpanRecord* inner = FindSpan(spans, "inner");
  const SpanRecord* deepest = FindSpan(spans, "deepest");
  const SpanRecord* sibling = FindSpan(spans, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(deepest, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(outer->parent, kNoSpan);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(deepest->parent, inner->id);
  // `inner` had closed by the time `sibling` opened.
  EXPECT_EQ(sibling->parent, outer->id);

  for (const SpanRecord& s : spans) {
    EXPECT_TRUE(s.closed()) << s.name;
    EXPECT_LE(s.start_ns, s.end_ns) << s.name;
  }
  // Children start no earlier than their parent.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_GE(deepest->start_ns, inner->start_ns);
  EXPECT_LE(deepest->end_ns, outer->end_ns);
}

TEST(TraceSessionTest, SecondRootIsUnparented) {
  TraceSession session;
  { Span a(&session, "a"); }
  { Span b(&session, "b"); }
  const std::vector<SpanRecord> spans = session.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[1].parent, kNoSpan);
  // Recorded in open order: a before b.
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[1].name, "b");
  EXPECT_LE(spans[0].end_ns, spans[1].start_ns);
}

TEST(TraceSessionTest, EventsAttachToTheRecordingSpan) {
  TraceSession session;
  {
    Span outer(&session, "outer");
    session.AddEvent("on-outer");  // innermost open span on this thread
    Span inner(&session, "inner");
    session.AddEvent("on-inner");
    outer.Event("explicit-on-outer");  // explicit span, not the innermost
  }
  const std::vector<SpanRecord> spans = session.spans();
  const std::vector<EventRecord> events = session.events();
  const SpanRecord* outer = FindSpan(spans, "outer");
  const SpanRecord* inner = FindSpan(spans, "inner");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "on-outer");
  EXPECT_EQ(events[0].span, outer->id);
  EXPECT_EQ(events[1].name, "on-inner");
  EXPECT_EQ(events[1].span, inner->id);
  EXPECT_EQ(events[2].name, "explicit-on-outer");
  EXPECT_EQ(events[2].span, outer->id);
}

TEST(TraceSessionTest, NullSessionIsANoOp) {
  // The disabled path must be safe everywhere instrumentation lives.
  Span span(nullptr, "never-recorded");
  span.Event("nothing");
  span.End();
  span.End();  // idempotent

  Span defaulted;
  defaulted.Event("nothing");

  Span moved = std::move(span);
  moved.End();
  SUCCEED();
}

TEST(TraceSessionTest, EndIsIdempotentAndEarly) {
  TraceSession session;
  Span span(&session, "once");
  span.End();
  span.End();
  span.Event("after-end");  // dropped: the handle is detached
  const std::vector<SpanRecord> spans = session.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].closed());
  EXPECT_TRUE(session.events().empty());
}

TEST(TraceSessionTest, ConcurrentRecordingKeepsPerThreadNesting) {
  TraceSession session;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&session, t] {
      Span root(&session, "thread-root-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span child(&session, "child");
        child.Event("tick");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<SpanRecord> spans = session.spans();
  ASSERT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads * (kSpansPerThread + 1)));
  EXPECT_EQ(session.events().size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));

  // Each child parents to its own thread's root, never across threads.
  for (const SpanRecord& s : spans) {
    if (s.name != "child") continue;
    const auto parent = std::find_if(
        spans.begin(), spans.end(),
        [&s](const SpanRecord& p) { return p.id == s.parent; });
    ASSERT_NE(parent, spans.end());
    EXPECT_EQ(parent->thread, s.thread);
  }
}

TEST(TraceSessionTest, SpanSecondsAndPhaseTotalsAggregateByName) {
  TraceSession session;
  { Span a(&session, "phase"); }
  { Span b(&session, "phase"); }
  { Span c(&session, "other"); }
  Span open(&session, "open");  // never closed: excluded from totals

  EXPECT_GE(session.SpanSeconds("phase"), 0.0);
  EXPECT_EQ(session.SpanSeconds("missing"), 0.0);

  const auto totals = session.PhaseTotals();
  ASSERT_EQ(totals.size(), 2u);  // "open" is still open
  EXPECT_EQ(totals[0].first, "other");
  EXPECT_EQ(totals[1].first, "phase");
  EXPECT_EQ(session.SpanSeconds("phase"), totals[1].second);
}

TEST(ChromeExportTest, EmitsWellFormedTraceEventJson) {
  TraceSession session;
  {
    Span outer(&session, "outer \"quoted\"\n");
    outer.Event("trip/deadline");
    Span inner(&session, "inner");
  }
  Span open(&session, "still-open");

  const std::string json = ToChromeTraceJson(session);
  EXPECT_TRUE(test::JsonChecker::IsValid(json)) << json;

  // Chrome trace-event structure: a traceEvents array with complete ("X"),
  // begin ("B") and instant ("i") phases.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);   // still-open
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);   // the event
  EXPECT_NE(json.find("trip/deadline"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);   // thread names
  // The quote and newline in the span name were escaped.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find("outer \"quoted\"\n"), std::string::npos);
}

TEST(ChromeExportTest, EmptySessionStillParses) {
  TraceSession session;
  const std::string json = ToChromeTraceJson(session);
  EXPECT_TRUE(test::JsonChecker::IsValid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace scwsc
