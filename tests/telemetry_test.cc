// Tests for the SLO rule language (serve/slo.h) and the telemetry pump
// (serve/telemetry.h): rule parsing, per-tick evaluation, JSONL output,
// Prometheus exposition, counter deltas, '#'-family sketch merging, and
// SLO-triggered flight-recorder dumps.

#include "src/serve/telemetry.h"

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/metrics.h"
#include "src/serve/json.h"
#include "src/serve/slo.h"
#include "tests/test_util.h"

namespace scwsc {
namespace serve {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string contents;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  return contents;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// --- rule parsing ----------------------------------------------------------

TEST(SloRuleTest, ParsesEveryMetricAndOperator) {
  auto p99 = ParseSloRule("p99_latency_ms<=250");
  SCWSC_ASSERT_OK(p99.status());
  EXPECT_EQ(p99->metric, SloMetric::kLatencyQuantile);
  EXPECT_EQ(p99->op, SloOp::kAtMost);
  EXPECT_DOUBLE_EQ(p99->quantile, 0.99);
  EXPECT_DOUBLE_EQ(p99->threshold, 250.0);

  auto p999 = ParseSloRule("p999_latency_ms < 1000");
  SCWSC_ASSERT_OK(p999.status());
  EXPECT_DOUBLE_EQ(p999->quantile, 0.999);

  auto p50 = ParseSloRule("p50_latency_ms<=5");
  SCWSC_ASSERT_OK(p50.status());
  EXPECT_DOUBLE_EQ(p50->quantile, 0.5);

  auto err = ParseSloRule("error_rate<=0.01");
  SCWSC_ASSERT_OK(err.status());
  EXPECT_EQ(err->metric, SloMetric::kErrorRate);

  auto depth = ParseSloRule("queue_depth<=100");
  SCWSC_ASSERT_OK(depth.status());
  EXPECT_EQ(depth->metric, SloMetric::kQueueDepth);

  auto breaker = ParseSloRule("breaker_open==0");
  SCWSC_ASSERT_OK(breaker.status());
  EXPECT_EQ(breaker->metric, SloMetric::kBreakerOpen);
  EXPECT_EQ(breaker->op, SloOp::kEquals);
  EXPECT_EQ(breaker->text, "breaker_open==0");
}

TEST(SloRuleTest, RejectsMalformedRules) {
  EXPECT_FALSE(ParseSloRule("").ok());
  EXPECT_FALSE(ParseSloRule("p99_latency_ms").ok());          // no operator
  EXPECT_FALSE(ParseSloRule("p99_latency_ms<=abc").ok());     // bad number
  EXPECT_FALSE(ParseSloRule("p99_latency_ms<=-5").ok());      // negative
  EXPECT_FALSE(ParseSloRule("p99_latency_ms<=5x").ok());      // trailing junk
  const Status unknown = ParseSloRule("p42_latency_ms<=5").status();
  EXPECT_FALSE(unknown.ok());
  // The error names the accepted metrics so typos are self-explaining.
  EXPECT_NE(unknown.ToString().find("p99_latency_ms"), std::string::npos);
}

TEST(SloRuleTest, ParseSloRulesFailsOnFirstBadRule) {
  auto ok = ParseSloRules({"p99_latency_ms<=1", "queue_depth<=10"});
  SCWSC_ASSERT_OK(ok.status());
  EXPECT_EQ(ok->size(), 2u);
  EXPECT_FALSE(ParseSloRules({"p99_latency_ms<=1", "nope<=2"}).ok());
}

// --- evaluation ------------------------------------------------------------

TEST(SloEvaluateTest, LatencyRuleComparesMilliseconds) {
  obs::QuantileSketch sketch;
  for (int i = 0; i < 100; ++i) sketch.Observe(0.050);  // 50 ms
  SloSample sample;
  sample.latency = &sketch;

  auto tight = ParseSloRule("p99_latency_ms<=10");
  auto loose = ParseSloRule("p99_latency_ms<=100");
  SCWSC_ASSERT_OK(tight.status());
  SCWSC_ASSERT_OK(loose.status());
  const auto violations = EvaluateSlos({*tight, *loose}, sample);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule.text, tight->text);
  EXPECT_NEAR(violations[0].observed, 50.0, 1.0);  // reported in ms
}

TEST(SloEvaluateTest, LatencyRulePassesWithNoData) {
  auto rule = ParseSloRule("p99_latency_ms<=0.001");
  SCWSC_ASSERT_OK(rule.status());
  EXPECT_TRUE(EvaluateSlos({*rule}, SloSample{}).empty());
  obs::QuantileSketch empty;
  SloSample sample;
  sample.latency = &empty;
  EXPECT_TRUE(EvaluateSlos({*rule}, sample).empty());
}

TEST(SloEvaluateTest, ErrorRateSkipsTicksWithoutTraffic) {
  auto rule = ParseSloRule("error_rate<=0.1");
  SCWSC_ASSERT_OK(rule.status());
  SloSample quiet;  // no completions, no failures
  EXPECT_TRUE(EvaluateSlos({*rule}, quiet).empty());

  SloSample failing;
  failing.completed_delta = 1;
  failing.failed_delta = 1;  // 50% error rate
  const auto violations = EvaluateSlos({*rule}, failing);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_DOUBLE_EQ(violations[0].observed, 0.5);
}

TEST(SloEvaluateTest, GaugeRulesUseQueueAndBreaker) {
  auto depth = ParseSloRule("queue_depth<=10");
  auto breaker = ParseSloRule("breaker_open==0");
  SCWSC_ASSERT_OK(depth.status());
  SCWSC_ASSERT_OK(breaker.status());
  SloSample sample;
  sample.queue_depth = 50.0;
  sample.breaker_open = 2.0;
  const auto violations = EvaluateSlos({*depth, *breaker}, sample);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_DOUBLE_EQ(violations[0].observed, 50.0);
  EXPECT_DOUBLE_EQ(violations[1].observed, 2.0);
}

// --- the pump --------------------------------------------------------------

TEST(TelemetryPumpTest, TicksAppendParsableJsonlWithDeltas) {
  const std::string jsonl = ::testing::TempDir() + "/scwsc_telemetry.jsonl";
  std::remove(jsonl.c_str());

  obs::MetricRegistry registry;
  TelemetryOptions options;
  options.interval_seconds = 0.0;  // manual ticks only
  options.jsonl_path = jsonl;
  TelemetryPump pump(&registry, options);

  registry.counter("serve.jobs.completed").Increment(3);
  registry.gauge("serve.queue.depth").Set(2.0);
  registry.sketch("serve.latency_seconds#cwsc").Observe(0.010);
  registry.sketch("serve.latency_seconds#exact").Observe(0.030);
  pump.TickNow();
  registry.counter("serve.jobs.completed").Increment(4);
  pump.TickNow();
  EXPECT_EQ(pump.ticks(), 2u);
  SCWSC_EXPECT_OK(pump.last_error());

  const auto lines = SplitLines(ReadWholeFile(jsonl));
  ASSERT_EQ(lines.size(), 2u);
  auto first = ParseJson(lines[0]);
  auto second = ParseJson(lines[1]);
  SCWSC_ASSERT_OK(first.status());
  SCWSC_ASSERT_OK(second.status());

  // Tick 1: counters carry absolutes, deltas equal them (prev was empty).
  const JsonValue* counters = first->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("serve.jobs.completed")->as_number(), 3.0);
  const JsonValue* deltas = second->Find("deltas");
  ASSERT_NE(deltas, nullptr);
  EXPECT_DOUBLE_EQ(deltas->Find("serve.jobs.completed")->as_number(), 4.0);

  // The '#'-family members merged into an aggregate quantile entry.
  const JsonValue* quantiles = first->Find("quantiles");
  ASSERT_NE(quantiles, nullptr);
  const JsonValue* family = quantiles->Find("serve.latency_seconds");
  ASSERT_NE(family, nullptr);
  EXPECT_DOUBLE_EQ(family->Find("count")->as_number(), 2.0);
  EXPECT_NE(quantiles->Find("serve.latency_seconds#cwsc"), nullptr);
  const JsonValue* gauges = first->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("serve.queue.depth")->as_number(), 2.0);
  std::remove(jsonl.c_str());
}

TEST(TelemetryPumpTest, ViolationBumpsCounterAndDumpsFlightRecorder) {
  const std::string jsonl = ::testing::TempDir() + "/scwsc_slo.jsonl";
  const std::string dump = ::testing::TempDir() + "/scwsc_slo_trace.json";
  std::remove(jsonl.c_str());
  std::remove(dump.c_str());

  obs::MetricRegistry registry;
  TelemetryOptions options;
  options.interval_seconds = 0.0;
  options.jsonl_path = jsonl;
  auto rule = ParseSloRule("p99_latency_ms<=0.000001");  // always trips
  SCWSC_ASSERT_OK(rule.status());
  options.slo_rules.push_back(*rule);
  options.slo_dump_path = dump;
  TelemetryPump pump(&registry, options);

  registry.sketch("serve.latency_seconds#cwsc").Observe(0.5);
  pump.TickNow();
  EXPECT_GE(pump.violations(), 1u);
  EXPECT_EQ(registry.CounterValue("serve.slo.violations"),
            pump.violations());
  ASSERT_FALSE(pump.dump_paths().empty());
  EXPECT_EQ(pump.dump_paths()[0], dump);

  const std::string trace = ReadWholeFile(dump);
  EXPECT_TRUE(test::JsonChecker::IsValid(trace)) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);

  // The violating tick's JSONL line names the rule.
  const auto lines = SplitLines(ReadWholeFile(jsonl));
  ASSERT_FALSE(lines.empty());
  auto parsed = ParseJson(lines[0]);
  SCWSC_ASSERT_OK(parsed.status());
  const JsonValue* slo = parsed->Find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_GE(slo->Find("violations_total")->as_number(), 1.0);
  std::remove(jsonl.c_str());
  std::remove(dump.c_str());
}

TEST(TelemetryPumpTest, DumpCountIsCapped) {
  obs::MetricRegistry registry;
  TelemetryOptions options;
  options.interval_seconds = 0.0;
  auto rule = ParseSloRule("queue_depth<=0.5");
  SCWSC_ASSERT_OK(rule.status());
  options.slo_rules.push_back(*rule);
  options.slo_dump_path = ::testing::TempDir() + "/scwsc_capped_trace.json";
  options.max_slo_dumps = 1;
  TelemetryPump pump(&registry, options);

  registry.gauge("serve.queue.depth").Set(10.0);
  pump.TickNow();
  pump.TickNow();
  pump.TickNow();
  EXPECT_EQ(pump.violations(), 3u);  // still counted
  EXPECT_EQ(pump.dump_paths().size(), 1u);  // but dumped once
  std::remove(pump.dump_paths()[0].c_str());
}

TEST(TelemetryPumpTest, PrometheusExpositionIsRewrittenEachTick) {
  const std::string prom = ::testing::TempDir() + "/scwsc_telemetry.prom";
  std::remove(prom.c_str());

  obs::MetricRegistry registry;
  TelemetryOptions options;
  options.interval_seconds = 0.0;
  options.prom_path = prom;
  TelemetryPump pump(&registry, options);

  registry.counter("serve.jobs.completed").Increment(7);
  registry.sketch("serve.latency_seconds#cwsc").Observe(0.25);
  pump.TickNow();

  const std::string text = ReadWholeFile(prom);
  EXPECT_NE(text.find("# TYPE scwsc_serve_jobs_completed counter"),
            std::string::npos);
  EXPECT_NE(text.find("scwsc_serve_jobs_completed 7"), std::string::npos);
  EXPECT_NE(text.find("member=\"cwsc\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  std::remove(prom.c_str());
}

TEST(TelemetryPumpTest, BackgroundThreadTicksAndStops) {
  obs::MetricRegistry registry;
  TelemetryOptions options;
  options.interval_seconds = 0.005;
  options.prom_path = ::testing::TempDir() + "/scwsc_bg.prom";
  int sampled = 0;
  TelemetryPump pump(&registry, options);
  pump.SetTickSampler([&sampled] { ++sampled; });
  // Stop() joins the thread and runs one final tick, so at least one tick
  // (and one sampler call) is guaranteed even on a slow machine.
  pump.Stop();
  pump.Stop();  // idempotent
  EXPECT_GE(pump.ticks(), 1u);
  EXPECT_GE(sampled, 1);
  std::remove(options.prom_path.c_str());
}

TEST(TelemetryPumpTest, SuppressedWarnGaugeIsMirrored) {
  obs::MetricRegistry registry;
  TelemetryOptions options;
  options.interval_seconds = 0.0;
  options.prom_path = ::testing::TempDir() + "/scwsc_supp.prom";
  TelemetryPump pump(&registry, options);
  pump.TickNow();
  // The gauge exists after a tick (its value is the process-wide total,
  // which other tests may have grown — only presence is asserted here).
  const auto gauges = registry.GaugeValues();
  bool found = false;
  for (const auto& [name, value] : gauges) {
    if (name == "log.suppressed") found = true;
  }
  EXPECT_TRUE(found);
  std::remove(options.prom_path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace scwsc
