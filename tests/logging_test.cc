// Tests for the warn-storm rate limiter in common/logging: repeated warns
// from one call site are suppressed past the burst and counted in
// LogSuppressedCount().

#include "src/common/logging.h"

#include <cstdint>

#include "gtest/gtest.h"

namespace scwsc {
namespace {

TEST(LoggingRateLimitTest, WarnStormFromOneSiteIsSuppressed) {
  const std::uint64_t before = LogSuppressedCount();
  // One call site (this macro expansion) hammered far past the burst of
  // 10: the bucket admits roughly the burst (plus a token or two of
  // refill) and suppresses the rest.
  for (int i = 0; i < 200; ++i) {
    SCWSC_LOG_WARN("storm %d", i);
  }
  const std::uint64_t suppressed = LogSuppressedCount() - before;
  EXPECT_GE(suppressed, 150u);
  EXPECT_LT(suppressed, 200u);  // the burst did get through
}

TEST(LoggingRateLimitTest, DistinctSitesHaveIndependentBudgets) {
  const std::uint64_t before = LogSuppressedCount();
  SCWSC_LOG_WARN("site a");
  SCWSC_LOG_WARN("site b");
  SCWSC_LOG_WARN("site c");
  // Three fresh sites, one message each: every bucket starts full, so
  // nothing is suppressed.
  EXPECT_EQ(LogSuppressedCount(), before);
}

TEST(LoggingRateLimitTest, OtherLevelsAreNeverRateLimited) {
  const std::uint64_t before = LogSuppressedCount();
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep the loop quiet on stderr
  for (int i = 0; i < 100; ++i) {
    SCWSC_LOG_INFO("info %d", i);
  }
  SetLogLevel(saved);
  EXPECT_EQ(LogSuppressedCount(), before);
}

}  // namespace
}  // namespace scwsc
