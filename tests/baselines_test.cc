#include "src/core/baselines.h"

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/instances.h"
#include "src/core/solution.h"

namespace scwsc {
namespace {

SetSystem MakeSystem() {
  SetSystem system(8);
  EXPECT_TRUE(system.AddSet({0, 1, 2, 3}, 4.0, "quad").ok());   // gain 1
  EXPECT_TRUE(system.AddSet({4, 5}, 1.0, "cheap-pair").ok());   // gain 2
  EXPECT_TRUE(system.AddSet({6}, 10.0, "pricey-single").ok());  // gain 0.1
  EXPECT_TRUE(system.AddSet({7}, 1.0, "single").ok());          // gain 1
  EXPECT_TRUE(system.AddSet({0, 1, 2, 3, 4, 5, 6, 7}, 40.0, "all").ok());
  return system;
}

TEST(GreedyWscTest, PicksByMarginalGain) {
  SetSystem system = MakeSystem();
  GreedyWscOptions opts;
  opts.coverage_fraction = 6.0 / 8.0;
  auto solution = RunGreedyWeightedSetCover(system, opts);
  ASSERT_TRUE(solution.ok());
  // Order: cheap-pair (2), then quad (1) -> covered 6.
  ASSERT_EQ(solution->sets.size(), 2u);
  EXPECT_EQ(system.set(solution->sets[0]).label, "cheap-pair");
  EXPECT_EQ(system.set(solution->sets[1]).label, "quad");
  EXPECT_EQ(solution->covered, 6u);
  EXPECT_DOUBLE_EQ(solution->total_cost, 5.0);
}

TEST(GreedyWscTest, UnboundedSizeGrowsWithCoverage) {
  SetSystem system = MakeSystem();
  GreedyWscOptions opts;
  opts.coverage_fraction = 1.0;
  auto solution = RunGreedyWeightedSetCover(system, opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->covered, 8u);
  EXPECT_GE(solution->sets.size(), 4u);  // needs the pricey single too
}

TEST(GreedyWscTest, MaxSetsCapTriggersInfeasible) {
  SetSystem system = MakeSystem();
  GreedyWscOptions opts;
  opts.coverage_fraction = 1.0;
  opts.max_sets = 1;
  EXPECT_TRUE(
      RunGreedyWeightedSetCover(system, opts).status().IsInfeasible());
}

TEST(GreedyWscTest, InfeasibleWhenSetsExhausted) {
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0}, 1.0).ok());
  GreedyWscOptions opts;
  opts.coverage_fraction = 1.0;
  EXPECT_TRUE(
      RunGreedyWeightedSetCover(system, opts).status().IsInfeasible());
}

TEST(GreedyWscTest, ZeroTargetIsEmpty) {
  SetSystem system = MakeSystem();
  GreedyWscOptions opts;
  opts.coverage_fraction = 0.0;
  auto solution = RunGreedyWeightedSetCover(system, opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->sets.empty());
}

TEST(GreedyMaxCoverageTest, IgnoresCostEntirely) {
  SetSystem system = MakeSystem();
  GreedyMaxCoverageOptions opts;
  opts.k = 1;
  auto solution = RunGreedyMaxCoverage(system, opts);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->sets.size(), 1u);
  EXPECT_EQ(system.set(solution->sets[0]).label, "all");  // benefit 8
  EXPECT_DOUBLE_EQ(solution->total_cost, 40.0);
}

TEST(GreedyMaxCoverageTest, StopsEarlyAtCoverageFraction) {
  SetSystem system = MakeSystem();
  GreedyMaxCoverageOptions opts;
  opts.k = 5;
  opts.stop_coverage_fraction = 0.5;
  auto solution = RunGreedyMaxCoverage(system, opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->sets.size(), 1u);  // "all" covers everything at once
}

TEST(GreedyMaxCoverageTest, StopsWhenNothingAddsCoverage) {
  SetSystem system(4);
  ASSERT_TRUE(system.AddSet({0, 1}, 1.0).ok());
  ASSERT_TRUE(system.AddSet({0, 1}, 1.0).ok());  // duplicate coverage
  GreedyMaxCoverageOptions opts;
  opts.k = 4;
  auto solution = RunGreedyMaxCoverage(system, opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->sets.size(), 1u);
  EXPECT_EQ(solution->covered, 2u);
}

TEST(BudgetedMaxCoverageTest, RespectsBudget) {
  SetSystem system = MakeSystem();
  BudgetedMaxCoverageOptions opts;
  opts.budget = 5.0;
  auto solution = RunBudgetedMaxCoverage(system, opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_LE(solution->total_cost, 5.0);
  // cheap-pair (gain 2) then quad (gain 1): budget exactly spent.
  EXPECT_EQ(solution->covered, 6u);
}

TEST(BudgetedMaxCoverageTest, ZeroBudgetSelectsOnlyFreeSets) {
  SetSystem system(3);
  ASSERT_TRUE(system.AddSet({0}, 0.0).ok());
  ASSERT_TRUE(system.AddSet({1, 2}, 1.0).ok());
  BudgetedMaxCoverageOptions opts;
  opts.budget = 0.0;
  auto solution = RunBudgetedMaxCoverage(system, opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->covered, 1u);
  EXPECT_DOUBLE_EQ(solution->total_cost, 0.0);
}

TEST(BudgetedMaxCoverageTest, MaxSetsCapApplies) {
  SetSystem system = MakeSystem();
  BudgetedMaxCoverageOptions opts;
  opts.budget = 100.0;
  opts.max_sets = 2;
  auto solution = RunBudgetedMaxCoverage(system, opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_LE(solution->sets.size(), 2u);
}

// §III counterexample: the budgeted greedy, allowed c*k sets, covers only
// c*k elements while the optimum (the k blocks) covers all C*k.
TEST(BudgetedMaxCoverageTest, SectionThreeCounterexample) {
  CounterexampleSpec spec;
  spec.big_set_size = 50;   // C
  spec.small_set_multiplier = 3;  // c
  spec.k = 4;
  auto system = MakeBudgetedCounterexample(spec);
  ASSERT_TRUE(system.ok());

  // Optimal: the k blocks, total cost k*(C+1), full coverage.
  const double opt_cost = double(spec.k) * (double(spec.big_set_size) + 1.0);

  BudgetedMaxCoverageOptions opts;
  opts.budget = opt_cost;
  opts.max_sets = spec.small_set_multiplier * spec.k;  // c*k sets allowed
  auto greedy = RunBudgetedMaxCoverage(*system, opts);
  ASSERT_TRUE(greedy.ok());

  // Greedy prefers the weight-1 singletons (gain 1 > C/(C+1)) and covers
  // only c*k of the C*k elements.
  EXPECT_EQ(greedy->covered, spec.small_set_multiplier * spec.k);
  EXPECT_LT(greedy->covered, system->num_elements() / 2);
}

TEST(BaselinesTest, InvalidOptionsRejected) {
  SetSystem system = MakeSystem();
  GreedyWscOptions wsc;
  wsc.coverage_fraction = -0.5;
  EXPECT_TRUE(
      RunGreedyWeightedSetCover(system, wsc).status().IsInvalidArgument());
  GreedyMaxCoverageOptions mc;
  mc.k = 0;
  EXPECT_TRUE(RunGreedyMaxCoverage(system, mc).status().IsInvalidArgument());
  BudgetedMaxCoverageOptions bmc;
  bmc.budget = -1.0;
  EXPECT_TRUE(
      RunBudgetedMaxCoverage(system, bmc).status().IsInvalidArgument());
}

}  // namespace
}  // namespace scwsc
