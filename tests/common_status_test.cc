#include "src/common/status.h"

#include "gtest/gtest.h"
#include "src/common/result.h"

namespace scwsc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Infeasible("x").IsInfeasible());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(StatusTest, UnavailableIsNotAnInterruption) {
  // Unavailable (open circuit breaker) is a retryable condition, not a
  // cooperative interruption carrying a partial result.
  Status st = Status::Unavailable("breaker open; retry after 0.5s");
  EXPECT_FALSE(st.IsInterruption());
  EXPECT_EQ(StatusCodeToString(st.code()), "Unavailable");
  EXPECT_EQ(st.ToString(), "Unavailable: breaker open; retry after 0.5s");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status st = Status::Infeasible("no qualified set");
  EXPECT_EQ(st.ToString(), "Infeasible: no qualified set");
  EXPECT_EQ(st.message(), "no qualified set");
}

TEST(StatusTest, CopiesShareRepresentation) {
  Status a = Status::NotFound("f");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_TRUE(b.IsNotFound());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInfeasible), "Infeasible");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  SCWSC_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SCWSC_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace scwsc
