#include "src/core/greedy_state.h"

#include "gtest/gtest.h"

namespace scwsc {
namespace {

SetSystem MakeSystem() {
  SetSystem system(6);
  EXPECT_TRUE(system.AddSet({0, 1, 2}, 3.0).ok());  // set 0
  EXPECT_TRUE(system.AddSet({2, 3}, 1.0).ok());     // set 1
  EXPECT_TRUE(system.AddSet({4, 5}, 2.0).ok());     // set 2
  EXPECT_TRUE(system.AddSet({0, 5}, 5.0).ok());     // set 3
  return system;
}

TEST(CoverStateTest, InitialMarginalsEqualBenefits) {
  SetSystem system = MakeSystem();
  CoverState state(system);
  EXPECT_EQ(state.MarginalCount(0), 3u);
  EXPECT_EQ(state.MarginalCount(1), 2u);
  EXPECT_EQ(state.MarginalCount(2), 2u);
  EXPECT_EQ(state.MarginalCount(3), 2u);
  EXPECT_EQ(state.covered_count(), 0u);
}

TEST(CoverStateTest, SelectUpdatesOverlappingSets) {
  SetSystem system = MakeSystem();
  CoverState state(system);
  EXPECT_EQ(state.Select(0), 3u);  // covers 0,1,2
  EXPECT_EQ(state.covered_count(), 3u);
  EXPECT_EQ(state.MarginalCount(0), 0u);
  EXPECT_EQ(state.MarginalCount(1), 1u);  // {3} left
  EXPECT_EQ(state.MarginalCount(2), 2u);  // untouched
  EXPECT_EQ(state.MarginalCount(3), 1u);  // {5} left
  EXPECT_TRUE(state.IsCovered(1));
  EXPECT_FALSE(state.IsCovered(3));
}

TEST(CoverStateTest, RepeatedSelectIsIdempotentOnCoverage) {
  SetSystem system = MakeSystem();
  CoverState state(system);
  state.Select(1);
  EXPECT_EQ(state.Select(1), 0u);  // nothing new
  EXPECT_EQ(state.covered_count(), 2u);
}

TEST(CoverStateTest, ResetRestoresInitialState) {
  SetSystem system = MakeSystem();
  CoverState state(system);
  state.Select(0);
  state.Reset();
  EXPECT_EQ(state.covered_count(), 0u);
  EXPECT_EQ(state.MarginalCount(0), 3u);
  EXPECT_EQ(state.MarginalCount(1), 2u);
}

TEST(SelectionKeyTest, OrdersByPrimaryThenCountThenCostThenId) {
  SelectionKey a{2.0, 2, 1.0, 5};
  SelectionKey b{1.0, 9, 0.0, 1};
  EXPECT_TRUE(b < a);

  SelectionKey c{2.0, 3, 1.0, 5};
  EXPECT_TRUE(a < c);  // higher count wins

  SelectionKey d{2.0, 2, 0.5, 5};
  EXPECT_TRUE(a < d);  // lower cost wins

  SelectionKey e{2.0, 2, 1.0, 4};
  EXPECT_TRUE(a < e);  // lower id wins
}

TEST(MakeGainKeyTest, ZeroCostIsInfiniteGain) {
  SelectionKey free = MakeGainKey(1, 0.0, 0);
  SelectionKey paid = MakeGainKey(100, 0.001, 1);
  EXPECT_TRUE(paid < free);
  SelectionKey empty_free = MakeGainKey(0, 0.0, 2);
  EXPECT_TRUE(empty_free < paid);
}

TEST(LazySelectorTest, PopsCurrentMaximumUnderDecay) {
  // Simulated marginal counts that decay between pushes and pops.
  std::vector<std::size_t> current = {5, 4, 3};
  LazySelector selector;
  for (SetId id = 0; id < 3; ++id) {
    selector.Push(MakeBenefitKey(current[id], 1.0, id));
  }
  // Decay set 0 below set 1 before the first pop.
  current[0] = 2;
  auto refresh = [&](SetId id) -> std::optional<SelectionKey> {
    if (current[id] == 0) return std::nullopt;
    return MakeBenefitKey(current[id], 1.0, id);
  };
  auto first = selector.Pop(refresh);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 1u);  // 4 beats decayed 2 and 3

  auto second = selector.Pop(refresh);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, 2u);

  auto third = selector.Pop(refresh);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->id, 0u);

  EXPECT_FALSE(selector.Pop(refresh).has_value());
}

TEST(LazySelectorTest, DropsCandidatesRefreshedToNull) {
  LazySelector selector;
  selector.Push(MakeBenefitKey(10, 1.0, 0));
  selector.Push(MakeBenefitKey(5, 1.0, 1));
  auto refresh = [&](SetId id) -> std::optional<SelectionKey> {
    if (id == 0) return std::nullopt;  // exhausted
    return MakeBenefitKey(5, 1.0, id);
  };
  auto popped = selector.Pop(refresh);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 1u);
}

TEST(LazySelectorTest, EmptySelectorPopsNothing) {
  LazySelector selector;
  EXPECT_TRUE(selector.empty());
  auto refresh = [](SetId) -> std::optional<SelectionKey> {
    return std::nullopt;
  };
  EXPECT_FALSE(selector.Pop(refresh).has_value());
}

}  // namespace
}  // namespace scwsc
