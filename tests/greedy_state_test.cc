#include "src/core/greedy_state.h"

#include "gtest/gtest.h"

namespace scwsc {
namespace {

SetSystem MakeSystem() {
  SetSystem system(6);
  EXPECT_TRUE(system.AddSet({0, 1, 2}, 3.0).ok());  // set 0
  EXPECT_TRUE(system.AddSet({2, 3}, 1.0).ok());     // set 1
  EXPECT_TRUE(system.AddSet({4, 5}, 2.0).ok());     // set 2
  EXPECT_TRUE(system.AddSet({0, 5}, 5.0).ok());     // set 3
  return system;
}

TEST(CoverStateTest, InitialMarginalsEqualBenefits) {
  SetSystem system = MakeSystem();
  CoverState state(system);
  EXPECT_EQ(state.MarginalCount(0), 3u);
  EXPECT_EQ(state.MarginalCount(1), 2u);
  EXPECT_EQ(state.MarginalCount(2), 2u);
  EXPECT_EQ(state.MarginalCount(3), 2u);
  EXPECT_EQ(state.covered_count(), 0u);
}

TEST(CoverStateTest, SelectUpdatesOverlappingSets) {
  SetSystem system = MakeSystem();
  CoverState state(system);
  EXPECT_EQ(state.Select(0), 3u);  // covers 0,1,2
  EXPECT_EQ(state.covered_count(), 3u);
  EXPECT_EQ(state.MarginalCount(0), 0u);
  EXPECT_EQ(state.MarginalCount(1), 1u);  // {3} left
  EXPECT_EQ(state.MarginalCount(2), 2u);  // untouched
  EXPECT_EQ(state.MarginalCount(3), 1u);  // {5} left
  EXPECT_TRUE(state.IsCovered(1));
  EXPECT_FALSE(state.IsCovered(3));
}

TEST(CoverStateTest, RepeatedSelectIsIdempotentOnCoverage) {
  SetSystem system = MakeSystem();
  CoverState state(system);
  state.Select(1);
  EXPECT_EQ(state.Select(1), 0u);  // nothing new
  EXPECT_EQ(state.covered_count(), 2u);
}

TEST(CoverStateTest, ResetRestoresInitialState) {
  SetSystem system = MakeSystem();
  CoverState state(system);
  state.Select(0);
  state.Reset();
  EXPECT_EQ(state.covered_count(), 0u);
  EXPECT_EQ(state.MarginalCount(0), 3u);
  EXPECT_EQ(state.MarginalCount(1), 2u);
}

// Pins the shared tie-break order used by CWSC's qualified argmax, the
// literal Fig. 2 engine and the gain-heap keys: higher gain (exact
// cross-multiplied), then higher marginal benefit, then lower cost, then
// lower id.
TEST(SelectionOrderTest, GainOrderPinsTieBreaks) {
  // Higher gain wins outright: 3/1 > 5/2.
  EXPECT_TRUE(BetterByGain(3, 1.0, 9, 5, 2.0, 1));
  EXPECT_FALSE(BetterByGain(5, 2.0, 1, 3, 1.0, 9));
  // Gains compared exactly by cross-multiplication, not rounded doubles:
  // 1/3 vs 2/6 is an exact tie, resolved by higher benefit.
  EXPECT_TRUE(BetterByGain(2, 6.0, 9, 1, 3.0, 1));
  EXPECT_FALSE(BetterByGain(1, 3.0, 1, 2, 6.0, 9));
  // Equal gain, equal benefit: lower id wins (equal count and gain force
  // equal cost).
  EXPECT_TRUE(BetterByGain(2, 6.0, 1, 2, 6.0, 9));
  EXPECT_FALSE(BetterByGain(2, 6.0, 9, 2, 6.0, 1));
  // Two zero-cost sets compare by count, then id.
  EXPECT_TRUE(BetterByGain(3, 0.0, 9, 2, 0.0, 1));
  EXPECT_TRUE(BetterByGain(2, 0.0, 1, 2, 0.0, 9));
}

TEST(SelectionOrderTest, BenefitOrderPinsTieBreaks) {
  // Higher benefit, then lower cost, then lower id.
  EXPECT_TRUE(BetterByBenefit(3, 9.0, 9, 2, 1.0, 1));
  EXPECT_TRUE(BetterByBenefit(2, 1.0, 9, 2, 2.0, 1));
  EXPECT_TRUE(BetterByBenefit(2, 1.0, 1, 2, 1.0, 9));
  EXPECT_FALSE(BetterByBenefit(2, 1.0, 9, 2, 1.0, 1));
}

TEST(SelectionKeyTest, HeapOrderMatchesSharedComparators) {
  // a < b exactly when b is the better candidate under the shared order.
  SelectionKey a = MakeBenefitKey(2, 1.0, 5);
  SelectionKey c = MakeBenefitKey(3, 1.0, 5);
  EXPECT_TRUE(a < c);  // higher count wins

  SelectionKey d = MakeBenefitKey(2, 0.5, 5);
  EXPECT_TRUE(a < d);  // lower cost wins

  SelectionKey e = MakeBenefitKey(2, 1.0, 4);
  EXPECT_TRUE(a < e);  // lower id wins

  // Gain keys: 9/3 beats 2/1; exact tie 1/3 == 2/6 resolved by count.
  EXPECT_TRUE(MakeGainKey(2, 1.0, 1) < MakeGainKey(9, 3.0, 2));
  EXPECT_TRUE(MakeGainKey(1, 3.0, 1) < MakeGainKey(2, 6.0, 2));
}

TEST(MakeGainKeyTest, ZeroCostIsInfiniteGain) {
  SelectionKey free = MakeGainKey(1, 0.0, 0);
  SelectionKey paid = MakeGainKey(100, 0.001, 1);
  EXPECT_TRUE(paid < free);
  SelectionKey empty_free = MakeGainKey(0, 0.0, 2);
  EXPECT_TRUE(empty_free < paid);
}

TEST(LazySelectorTest, PopsCurrentMaximumUnderDecay) {
  // Simulated marginal counts that decay between pushes and pops.
  std::vector<std::size_t> current = {5, 4, 3};
  LazySelector selector;
  for (SetId id = 0; id < 3; ++id) {
    selector.Push(MakeBenefitKey(current[id], 1.0, id));
  }
  // Decay set 0 below set 1 before the first pop.
  current[0] = 2;
  auto refresh = [&](SetId id) -> std::optional<SelectionKey> {
    if (current[id] == 0) return std::nullopt;
    return MakeBenefitKey(current[id], 1.0, id);
  };
  auto first = selector.Pop(refresh);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 1u);  // 4 beats decayed 2 and 3

  auto second = selector.Pop(refresh);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, 2u);

  auto third = selector.Pop(refresh);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->id, 0u);

  EXPECT_FALSE(selector.Pop(refresh).has_value());
}

TEST(LazySelectorTest, DropsCandidatesRefreshedToNull) {
  LazySelector selector;
  selector.Push(MakeBenefitKey(10, 1.0, 0));
  selector.Push(MakeBenefitKey(5, 1.0, 1));
  auto refresh = [&](SetId id) -> std::optional<SelectionKey> {
    if (id == 0) return std::nullopt;  // exhausted
    return MakeBenefitKey(5, 1.0, id);
  };
  auto popped = selector.Pop(refresh);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 1u);
}

TEST(LazySelectorTest, EmptySelectorPopsNothing) {
  LazySelector selector;
  EXPECT_TRUE(selector.empty());
  auto refresh = [](SetId) -> std::optional<SelectionKey> {
    return std::nullopt;
  };
  EXPECT_FALSE(selector.Pop(refresh).has_value());
}

}  // namespace
}  // namespace scwsc
