#include "src/lp/lp_rounding.h"

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/cwsc.h"
#include "src/core/exact.h"
#include "src/core/instances.h"
#include "src/gen/toy.h"
#include "src/pattern/pattern_system.h"

namespace scwsc {
namespace {

using lp::LpScwscOptions;
using lp::SolveByLpRounding;
using lp::SolveScwscRelaxation;

SetSystem ToySystem() {
  Table table = gen::MakeEntitiesTable();
  auto system = pattern::PatternSystem::Build(
      table, pattern::CostFunction(pattern::CostKind::kMax));
  EXPECT_TRUE(system.ok());
  // Copy out the set system (PatternSystem owns it).
  SetSystem copy(system->set_system().num_elements());
  for (SetId s = 0; s < system->set_system().num_sets(); ++s) {
    const auto& set = system->set_system().set(s);
    EXPECT_TRUE(copy.AddSet(set.elements, set.cost).ok());
  }
  return copy;
}

TEST(LpRelaxationTest, LowerBoundsTheToyOptimum) {
  SetSystem system = ToySystem();
  // Known optimum for k=2, s=9/16 is 27 (paper §I).
  auto relaxation = SolveScwscRelaxation(system, 2, 9.0 / 16.0);
  ASSERT_TRUE(relaxation.ok()) << relaxation.status().ToString();
  EXPECT_LE(relaxation->lower_bound, 27.0 + 1e-6);
  EXPECT_GT(relaxation->lower_bound, 0.0);
  // Fractional values stay in [0, 1].
  for (double x : relaxation->x) {
    EXPECT_GE(x, -1e-9);
    EXPECT_LE(x, 1.0 + 1e-9);
  }
}

TEST(LpRelaxationTest, ZeroTargetIsFree) {
  SetSystem system = ToySystem();
  auto relaxation = SolveScwscRelaxation(system, 2, 0.0);
  ASSERT_TRUE(relaxation.ok());
  EXPECT_DOUBLE_EQ(relaxation->lower_bound, 0.0);
}

TEST(LpRelaxationTest, ValidatesArguments) {
  SetSystem system = ToySystem();
  EXPECT_TRUE(
      SolveScwscRelaxation(system, 0, 0.5).status().IsInvalidArgument());
  EXPECT_TRUE(
      SolveScwscRelaxation(system, 2, 1.5).status().IsInvalidArgument());
}

TEST(LpRelaxationTest, LowerBoundsExactOptimumOnRandomInstances) {
  Rng rng(4321);
  for (int trial = 0; trial < 12; ++trial) {
    RandomSystemSpec spec;
    spec.num_elements = 15;
    spec.num_sets = 12;
    spec.max_set_size = 5;
    auto system = RandomSetSystem(spec, rng);
    ASSERT_TRUE(system.ok());
    const std::size_t k = 2 + rng.NextBounded(3);
    const double fraction = rng.NextDouble(0.2, 0.9);

    ExactOptions exact_opts;
    exact_opts.k = k;
    exact_opts.coverage_fraction = fraction;
    auto optimal = SolveExact(*system, exact_opts);
    if (!optimal.ok()) continue;  // infeasible instance

    auto relaxation = SolveScwscRelaxation(*system, k, fraction);
    ASSERT_TRUE(relaxation.ok()) << "trial " << trial << ": "
                                 << relaxation.status().ToString();
    EXPECT_LE(relaxation->lower_bound,
              optimal->solution.total_cost + 1e-6)
        << "trial " << trial;
  }
}

TEST(LpRoundingTest, ProducesCoverageFeasibleSolution) {
  SetSystem system = ToySystem();
  LpScwscOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  auto result = SolveByLpRounding(system, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->solution.covered, 9u);
  EXPECT_GE(result->solution.total_cost, result->lp_lower_bound - 1e-6);
  auto audit = AuditSolution(system, result->solution);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->bookkeeping_consistent);
}

TEST(LpRoundingTest, DeterministicInSeed) {
  SetSystem system = ToySystem();
  LpScwscOptions opts;
  opts.k = 3;
  opts.coverage_fraction = 0.5;
  opts.seed = 7;
  auto a = SolveByLpRounding(system, opts);
  auto b = SolveByLpRounding(system, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->solution.sets, b->solution.sets);
}

TEST(LpRoundingTest, ReportsCardinalityViolation) {
  // The §III caveat: rounding can exceed k. Construct many tiny sets so
  // the fractional solution spreads mass and rounding picks more than k.
  SetSystem system(40);
  for (ElementId e = 0; e < 40; ++e) {
    ASSERT_TRUE(system.AddSet({e}, 1.0).ok());
  }
  std::vector<ElementId> all(40);
  for (ElementId e = 0; e < 40; ++e) all[e] = e;
  ASSERT_TRUE(system.AddSet(all, 100.0).ok());

  LpScwscOptions opts;
  opts.k = 20;
  opts.coverage_fraction = 0.5;  // LP: 20 singletons at x = 1 is optimal
  opts.trials = 32;
  auto result = SolveByLpRounding(system, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->solution.covered, 20u);
  // With alpha = ln(40)+1 ≈ 4.7, every singleton with positive mass rounds
  // to 1 with high probability -> expect a violation.
  EXPECT_EQ(result->cardinality_violation,
            result->solution.sets.size() > opts.k
                ? result->solution.sets.size() - opts.k
                : 0u);
}

TEST(LpRoundingTest, GreedyRepairWhenNoTrialFeasible) {
  SetSystem system = ToySystem();
  LpScwscOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  opts.trials = 0;  // force the repair path
  auto result = SolveByLpRounding(system, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->solution.covered, 9u);
  EXPECT_EQ(result->feasible_trials, 0u);
}

TEST(LpRoundingTest, GapCertificateForGreedy) {
  // LP bound <= OPT <= CWSC: the certified gap CWSC/LP is finite and
  // small on the toy instance.
  SetSystem system = ToySystem();
  auto greedy = RunCwsc(system, {2, 9.0 / 16.0});
  ASSERT_TRUE(greedy.ok());
  auto relaxation = SolveScwscRelaxation(system, 2, 9.0 / 16.0);
  ASSERT_TRUE(relaxation.ok());
  ASSERT_GT(relaxation->lower_bound, 0.0);
  const double certified_gap = greedy->total_cost / relaxation->lower_bound;
  EXPECT_GE(certified_gap, 1.0 - 1e-9);
  EXPECT_LE(certified_gap, 10.0);  // 28 / bound; sanity ceiling
}

}  // namespace
}  // namespace scwsc
