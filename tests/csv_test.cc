#include "src/table/csv.h"

#include <sstream>

#include "gtest/gtest.h"
#include "src/table/builder.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

TEST(CsvReadTest, ParsesHeaderAndRows) {
  std::istringstream in("Type,Location,Cost\nA,West,10\nB,South,2\n");
  csv::ReadOptions opts;
  opts.measure_column = "Cost";
  auto table = csv::Read(in, opts);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->num_attributes(), 2u);
  EXPECT_EQ(table->value_name(0, 0), "A");
  EXPECT_EQ(table->value_name(1, 1), "South");
  EXPECT_DOUBLE_EQ(table->measure(0), 10.0);
}

TEST(CsvReadTest, MeasureColumnCanBeAnywhere) {
  std::istringstream in("Cost,Type\n5,A\n7,B\n");
  csv::ReadOptions opts;
  opts.measure_column = "Cost";
  auto table = csv::Read(in, opts);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_attributes(), 1u);
  EXPECT_DOUBLE_EQ(table->measure(1), 7.0);
  EXPECT_EQ(table->value_name(1, 0), "B");
}

TEST(CsvReadTest, NoMeasureColumnTreatsAllAsAttributes) {
  std::istringstream in("a,b\nx,y\n");
  auto table = csv::Read(in);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_attributes(), 2u);
  EXPECT_FALSE(table->has_measure());
}

TEST(CsvReadTest, SkipsBlankLines) {
  std::istringstream in("a\nx\n\n  \ny\n");
  auto table = csv::Read(in);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(CsvReadTest, ErrorsCarryLineNumbers) {
  std::istringstream in("a,b,Cost\nx,y,1\nx,y\n");
  csv::ReadOptions opts;
  opts.measure_column = "Cost";
  auto table = csv::Read(in, opts);
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsParseError());
  EXPECT_NE(table.status().message().find("line 3"), std::string::npos);
}

TEST(CsvReadTest, RejectsBadMeasureValue) {
  std::istringstream in("a,Cost\nx,notanumber\n");
  csv::ReadOptions opts;
  opts.measure_column = "Cost";
  EXPECT_TRUE(csv::Read(in, opts).status().IsParseError());
}

TEST(CsvReadTest, RejectsMissingMeasureColumn) {
  std::istringstream in("a,b\nx,y\n");
  csv::ReadOptions opts;
  opts.measure_column = "Cost";
  EXPECT_TRUE(csv::Read(in, opts).status().IsNotFound());
}

TEST(CsvReadTest, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_TRUE(csv::Read(in).status().IsParseError());
}

TEST(CsvReadTest, RejectsDuplicateMeasureColumn) {
  std::istringstream in("Cost,Cost\n1,2\n");
  csv::ReadOptions opts;
  opts.measure_column = "Cost";
  EXPECT_TRUE(csv::Read(in, opts).status().IsParseError());
}

TEST(CsvReadTest, CustomDelimiter) {
  std::istringstream in("a|Cost\nx|2.5\n");
  csv::ReadOptions opts;
  opts.delimiter = '|';
  opts.measure_column = "Cost";
  auto table = csv::Read(in, opts);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->measure(0), 2.5);
}

TEST(CsvRoundTripTest, WriteThenReadPreservesTable) {
  TableBuilder builder({"Type", "Location"}, "Cost");
  SCWSC_ASSERT_OK(builder.AddRow({"A", "West"}, 10.25));
  SCWSC_ASSERT_OK(builder.AddRow({"B", "South"}, 2.0));
  Table original = std::move(builder).Build();

  std::ostringstream out;
  SCWSC_ASSERT_OK(csv::Write(original, out));

  std::istringstream in(out.str());
  csv::ReadOptions opts;
  opts.measure_column = "Cost";
  auto restored = csv::Read(in, opts);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->num_rows(), original.num_rows());
  for (RowId r = 0; r < original.num_rows(); ++r) {
    for (std::size_t a = 0; a < original.num_attributes(); ++a) {
      EXPECT_EQ(restored->value_name(r, a), original.value_name(r, a));
    }
    EXPECT_DOUBLE_EQ(restored->measure(r), original.measure(r));
  }
}

TEST(CsvFileTest, ReadFileReportsMissingPath) {
  EXPECT_TRUE(
      csv::ReadFile("/nonexistent/path.csv").status().IsNotFound());
}

TEST(CsvFileTest, WriteFileAndReadFileRoundTrip) {
  TableBuilder builder({"x"}, "m");
  SCWSC_ASSERT_OK(builder.AddRow({"v"}, 3.5));
  Table t = std::move(builder).Build();
  const std::string path = ::testing::TempDir() + "/scwsc_csv_test.csv";
  SCWSC_ASSERT_OK(csv::WriteFile(t, path));
  csv::ReadOptions opts;
  opts.measure_column = "m";
  auto restored = csv::ReadFile(path, opts);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->measure(0), 3.5);
}

}  // namespace
}  // namespace scwsc
