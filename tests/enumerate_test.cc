#include "src/pattern/enumerate.h"

#include <algorithm>
#include <unordered_set>

#include "gtest/gtest.h"
#include "src/gen/lbl_synth.h"
#include "src/gen/toy.h"
#include "src/table/builder.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using pattern::CanonicalLess;
using pattern::EnumerateAllPatterns;
using pattern::EnumerateOptions;
using pattern::Pattern;

TEST(EnumerateTest, ToyTableProducesExactly24Patterns) {
  Table table = gen::MakeEntitiesTable();
  auto patterns = EnumerateAllPatterns(table);
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ(patterns->size(), 24u);
}

TEST(EnumerateTest, EveryEnumeratedPatternBenefitsAreExact) {
  Table table = gen::MakeEntitiesTable();
  auto patterns = EnumerateAllPatterns(table);
  ASSERT_TRUE(patterns.ok());
  for (const auto& ep : *patterns) {
    // Rows are sorted, unique, and match the pattern; no other row matches.
    EXPECT_TRUE(std::is_sorted(ep.rows.begin(), ep.rows.end()));
    std::unordered_set<RowId> set(ep.rows.begin(), ep.rows.end());
    EXPECT_EQ(set.size(), ep.rows.size());
    for (RowId r = 0; r < table.num_rows(); ++r) {
      EXPECT_EQ(ep.pattern.Matches(table, r), set.count(r) > 0)
          << ep.pattern.ToString(table) << " row " << r;
    }
  }
}

TEST(EnumerateTest, ResultIsCanonicallySorted) {
  Table table = gen::MakeEntitiesTable();
  auto patterns = EnumerateAllPatterns(table);
  ASSERT_TRUE(patterns.ok());
  for (std::size_t i = 0; i + 1 < patterns->size(); ++i) {
    EXPECT_TRUE(
        CanonicalLess((*patterns)[i].pattern, (*patterns)[i + 1].pattern));
  }
}

TEST(EnumerateTest, IncludesAllWildcardsPattern) {
  Table table = gen::MakeEntitiesTable();
  auto patterns = EnumerateAllPatterns(table);
  ASSERT_TRUE(patterns.ok());
  const Pattern root = Pattern::AllWildcards(2);
  auto it = std::find_if(
      patterns->begin(), patterns->end(),
      [&](const pattern::EnumeratedPattern& ep) { return ep.pattern == root; });
  ASSERT_NE(it, patterns->end());
  EXPECT_EQ(it->rows.size(), table.num_rows());
}

TEST(EnumerateTest, SingleAttributeTable) {
  TableBuilder builder({"x"}, "m");
  SCWSC_ASSERT_OK(builder.AddRow({"a"}, 1));
  SCWSC_ASSERT_OK(builder.AddRow({"b"}, 2));
  SCWSC_ASSERT_OK(builder.AddRow({"a"}, 3));
  Table table = std::move(builder).Build();
  auto patterns = EnumerateAllPatterns(table);
  ASSERT_TRUE(patterns.ok());
  // {a}, {b}, {ALL}.
  EXPECT_EQ(patterns->size(), 3u);
}

TEST(EnumerateTest, DuplicateRowsShareOnePatternSet) {
  TableBuilder builder({"x", "y"}, "m");
  for (int i = 0; i < 5; ++i) {
    SCWSC_ASSERT_OK(builder.AddRow({"a", "b"}, i));
  }
  Table table = std::move(builder).Build();
  auto patterns = EnumerateAllPatterns(table);
  ASSERT_TRUE(patterns.ok());
  // (a,b), (a,ALL), (ALL,b), (ALL,ALL): 4 distinct patterns, each with all
  // five rows.
  EXPECT_EQ(patterns->size(), 4u);
  for (const auto& ep : *patterns) EXPECT_EQ(ep.rows.size(), 5u);
}

TEST(EnumerateTest, MaxPatternsGuardTriggers) {
  Table table = gen::MakeEntitiesTable();
  EnumerateOptions opts;
  opts.max_patterns = 5;
  EXPECT_TRUE(
      EnumerateAllPatterns(table, opts).status().IsResourceExhausted());
}

TEST(EnumerateTest, RejectsZeroAttributeTable) {
  TableBuilder builder({}, "m");
  Table table = std::move(builder).Build();
  EXPECT_TRUE(EnumerateAllPatterns(table).status().IsInvalidArgument());
}

TEST(EnumerateTest, PackedAndGenericPathsAgree) {
  // A 5-attribute synthetic trace fits the packed-key fast path; widen one
  // domain artificially by using many distinct values to compare against
  // the generic path via a table whose key cannot pack (21 attributes is
  // rejected, so instead force genericity with huge domains).
  gen::LblSynthSpec spec;
  spec.num_rows = 300;
  spec.seed = 17;
  auto small = gen::MakeLblSynth(spec);
  ASSERT_TRUE(small.ok());
  auto packed = EnumerateAllPatterns(*small);
  ASSERT_TRUE(packed.ok());

  // Rebuild the same logical table with inflated dictionaries: append a
  // distinct suffix per value so domains stay small but force the generic
  // path by adding dummy high-cardinality attributes is intrusive; instead
  // verify the packed result against first-principles matching.
  std::size_t total_membership = 0;
  for (const auto& ep : *packed) total_membership += ep.rows.size();
  // Each row generates exactly 2^5 = 32 (pattern, row) memberships.
  EXPECT_EQ(total_membership, small->num_rows() * 32);
}

TEST(EnumerateTest, MembershipCountIdentityHoldsOnToy) {
  Table table = gen::MakeEntitiesTable();
  auto patterns = EnumerateAllPatterns(table);
  ASSERT_TRUE(patterns.ok());
  std::size_t total = 0;
  for (const auto& ep : *patterns) total += ep.rows.size();
  EXPECT_EQ(total, table.num_rows() * 4);  // 2^2 generalizations per row
}

}  // namespace
}  // namespace scwsc
