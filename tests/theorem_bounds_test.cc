// Parameterized property tests for the paper's provable guarantees,
// checked against exact optima on instances small enough to solve exactly:
//
//  - Theorem 4: CMC (epsilon = 0) returns at most 5k sets covering at least
//    (1-1/e)·ŝ·n elements with cost at most (1+b)(2·ceil(log2 k)+1)·OPT.
//  - Theorem 5: the epsilon variant returns at most (1+eps)k sets with the
//    same coverage guarantee.
//  - CWSC: at most k sets meeting the full target whenever it returns OK.
//
// OPT is computed by SolveExact on the same instance (which must itself be
// feasible for the theorem to apply).

#include <cmath>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/exact.h"
#include "src/core/instances.h"
#include "src/core/solution.h"

namespace scwsc {
namespace {

struct BoundParam {
  std::uint64_t seed;
  std::size_t elements;
  std::size_t sets;
  std::size_t k;
  double fraction;
  double b;
  double epsilon;
};

std::string BoundName(const ::testing::TestParamInfo<BoundParam>& info) {
  const BoundParam& p = info.param;
  return "s" + std::to_string(p.seed) + "n" + std::to_string(p.elements) +
         "m" + std::to_string(p.sets) + "k" + std::to_string(p.k) + "f" +
         std::to_string(static_cast<int>(p.fraction * 100)) + "b" +
         std::to_string(static_cast<int>(p.b * 10)) + "e" +
         std::to_string(static_cast<int>(p.epsilon * 10));
}

class TheoremBoundsTest : public ::testing::TestWithParam<BoundParam> {
 protected:
  SetSystem MakeInstance() {
    const BoundParam& p = GetParam();
    Rng rng(p.seed);
    RandomSystemSpec spec;
    spec.num_elements = p.elements;
    spec.num_sets = p.sets;
    spec.max_set_size = 6;
    spec.min_cost = 1.0;
    spec.max_cost = 30.0;
    spec.ensure_universe = true;
    auto system = RandomSetSystem(spec, rng);
    EXPECT_TRUE(system.ok());
    return std::move(system).value();
  }
};

TEST_P(TheoremBoundsTest, CmcSatisfiesTheorem4CostBound) {
  const BoundParam& p = GetParam();
  SetSystem system = MakeInstance();

  ExactOptions exact_opts;
  exact_opts.k = p.k;
  exact_opts.coverage_fraction = p.fraction;
  auto optimal = SolveExact(system, exact_opts);
  if (!optimal.ok()) {
    GTEST_SKIP() << "instance infeasible for exact k-set cover: "
                 << optimal.status().ToString();
  }
  const double opt_cost = optimal->solution.total_cost;

  CmcOptions opts;
  opts.k = p.k;
  opts.coverage_fraction = p.fraction;
  opts.b = p.b;
  auto result = RunCmc(system, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Size bound: at most 5k sets.
  EXPECT_LE(result->solution.sets.size(), 5 * p.k);
  // Coverage bound: at least (1-1/e) * ŝ * n.
  const std::size_t relaxed = SetSystem::CoverageTarget(
      (1.0 - 1.0 / M_E) * p.fraction, system.num_elements());
  EXPECT_GE(result->solution.covered, relaxed);
  // Cost bound: (1+b)(2*ceil(log2 k) + 1) * OPT. (OPT here covers the FULL
  // target, which upper-bounds the optimum for the relaxed target the
  // theorem actually compares against, so the check is conservative-valid.)
  if (opt_cost > 0) {
    const double log_k = std::ceil(std::log2(static_cast<double>(p.k)));
    const double factor = (1.0 + p.b) * (2.0 * log_k + 1.0);
    EXPECT_LE(result->solution.total_cost, factor * opt_cost * (1.0 + 1e-9))
        << "cmc=" << result->solution.total_cost << " opt=" << opt_cost
        << " factor=" << factor;
  }
}

TEST_P(TheoremBoundsTest, EpsilonVariantSatisfiesTheorem5SizeBound) {
  const BoundParam& p = GetParam();
  if (p.epsilon <= 0.0) GTEST_SKIP() << "epsilon variant only";
  SetSystem system = MakeInstance();

  CmcOptions opts;
  opts.k = p.k;
  opts.coverage_fraction = p.fraction;
  opts.b = p.b;
  opts.epsilon = p.epsilon;
  auto result = RunCmc(system, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->solution.sets.size(),
            static_cast<std::size_t>(
                std::floor((1.0 + p.epsilon) * static_cast<double>(p.k))));
  const std::size_t relaxed = SetSystem::CoverageTarget(
      (1.0 - 1.0 / M_E) * p.fraction, system.num_elements());
  EXPECT_GE(result->solution.covered, relaxed);
}

TEST_P(TheoremBoundsTest, CwscMeetsConstraintsAndIsNeverBelowOpt) {
  const BoundParam& p = GetParam();
  SetSystem system = MakeInstance();
  auto greedy = RunCwsc(system, {p.k, p.fraction});
  if (!greedy.ok()) GTEST_SKIP() << greedy.status().ToString();
  EXPECT_TRUE(SatisfiesConstraints(system, *greedy, p.k, p.fraction));

  ExactOptions exact_opts;
  exact_opts.k = p.k;
  exact_opts.coverage_fraction = p.fraction;
  auto optimal = SolveExact(system, exact_opts);
  ASSERT_TRUE(optimal.ok());  // greedy found one, so exact must too
  EXPECT_GE(greedy->total_cost, optimal->solution.total_cost - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, TheoremBoundsTest,
    ::testing::Values(BoundParam{1, 24, 20, 2, 0.5, 1.0, 0.0},
                      BoundParam{2, 24, 20, 2, 0.5, 1.0, 1.0},
                      BoundParam{3, 30, 25, 3, 0.4, 0.5, 0.0},
                      BoundParam{4, 30, 25, 3, 0.6, 2.0, 2.0},
                      BoundParam{5, 20, 16, 4, 0.7, 1.0, 0.0},
                      BoundParam{6, 26, 18, 2, 0.8, 1.0, 0.5},
                      BoundParam{7, 22, 22, 3, 0.3, 0.5, 1.0},
                      BoundParam{8, 28, 24, 2, 0.9, 1.0, 0.0},
                      BoundParam{9, 24, 20, 5, 0.5, 2.0, 0.0},
                      BoundParam{10, 32, 26, 3, 0.45, 1.0, 2.0}),
    BoundName);

}  // namespace
}  // namespace scwsc
