#include "src/pattern/codec.h"

#include <unordered_set>

#include "gtest/gtest.h"
#include "src/gen/lbl_synth.h"
#include "src/gen/toy.h"
#include "src/pattern/enumerate.h"
#include "src/table/builder.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using pattern::kAll;
using pattern::PackedKeyHash;
using pattern::Pattern;
using pattern::PatternCodec;

TEST(PatternCodecTest, ToyTableFits) {
  Table table = gen::MakeEntitiesTable();
  PatternCodec codec(table);
  EXPECT_TRUE(codec.fits());
  EXPECT_EQ(codec.num_attributes(), 2u);
}

TEST(PatternCodecTest, AllWildcardsEncodesToZero) {
  Table table = gen::MakeEntitiesTable();
  PatternCodec codec(table);
  EXPECT_EQ(codec.Encode(Pattern::AllWildcards(2)), 0u);
  EXPECT_EQ(codec.Decode(0), Pattern::AllWildcards(2));
}

TEST(PatternCodecTest, RoundTripsEveryEnumeratedPattern) {
  gen::LblSynthSpec spec;
  spec.num_rows = 500;
  auto table = gen::MakeLblSynth(spec);
  ASSERT_TRUE(table.ok());
  PatternCodec codec(*table);
  ASSERT_TRUE(codec.fits());
  auto enumerated = pattern::EnumerateAllPatterns(*table);
  ASSERT_TRUE(enumerated.ok());
  std::unordered_set<std::uint64_t> keys;
  for (const auto& ep : *enumerated) {
    const std::uint64_t key = codec.Encode(ep.pattern);
    EXPECT_EQ(codec.Decode(key), ep.pattern);
    EXPECT_TRUE(keys.insert(key).second) << "duplicate key";
  }
}

TEST(PatternCodecTest, WithValueAndWithWildcardMatchPatternOps) {
  Table table = gen::MakeEntitiesTable();
  PatternCodec codec(table);
  const Pattern root = Pattern::AllWildcards(2);
  const std::uint64_t root_key = codec.Encode(root);
  for (ValueId v = 0; v < table.domain_size(1); ++v) {
    const std::uint64_t child_key = codec.WithValue(root_key, 1, v);
    EXPECT_EQ(codec.Decode(child_key), root.WithValue(1, v));
    EXPECT_FALSE(codec.IsWildcard(child_key, 1));
    EXPECT_TRUE(codec.IsWildcard(child_key, 0));
    EXPECT_EQ(codec.WithWildcard(child_key, 1), root_key);
  }
}

TEST(PatternCodecTest, NestedSpecialization) {
  Table table = gen::MakeEntitiesTable();
  PatternCodec codec(table);
  std::uint64_t key = codec.Encode(Pattern::AllWildcards(2));
  key = codec.WithValue(key, 0, 1);
  key = codec.WithValue(key, 1, 3);
  const Pattern p = codec.Decode(key);
  EXPECT_EQ(p.value(0), 1u);
  EXPECT_EQ(p.value(1), 3u);
  // Clearing one attribute leaves the other.
  const Pattern parent = codec.Decode(codec.WithWildcard(key, 0));
  EXPECT_TRUE(parent.is_wildcard(0));
  EXPECT_EQ(parent.value(1), 3u);
}

TEST(PatternCodecTest, WideTablesDoNotFit) {
  // 5 attributes with huge domains: widths sum past 64 bits. Building such
  // a dictionary for real would be slow, so synthesize dictionaries by
  // adding many distinct values to a builder.
  TableBuilder builder({"a", "b", "c", "d", "e"}, "m");
  Rng rng(3);
  for (int i = 0; i < 40'000; ++i) {
    std::vector<std::string> row;
    std::vector<std::string_view> views;
    for (int a = 0; a < 5; ++a) {
      row.push_back("v" + std::to_string(rng.NextBounded(20'000)));
    }
    for (auto& v : row) views.push_back(v);
    SCWSC_ASSERT_OK(builder.AddRow(views, 1.0));
  }
  Table table = std::move(builder).Build();
  PatternCodec codec(table);
  // 5 domains of ~18k values -> ~15 bits each = 75 bits: no fit.
  EXPECT_FALSE(codec.fits());
}

TEST(PackedKeyHashTest, MixesDistinctKeys) {
  PackedKeyHash hash;
  std::unordered_set<std::size_t> hashes;
  for (std::uint64_t k = 0; k < 1000; ++k) hashes.insert(hash(k));
  EXPECT_GT(hashes.size(), 990u);  // essentially collision-free on small sets
}

}  // namespace
}  // namespace scwsc
