// Property test lifting the §V-C1 equivalence to hierarchies: on random
// tables with random per-attribute forests, the lattice-optimized
// hierarchical CWSC must select exactly the same patterns as Fig. 2 run
// over the fully enumerated hierarchical pattern system.

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/core/cwsc.h"
#include "src/hierarchy/hcwsc.h"
#include "src/hierarchy/henumerate.h"
#include "src/table/builder.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using hierarchy::AttributeHierarchy;
using hierarchy::HPatternSystem;
using hierarchy::RunHierarchicalCwsc;
using hierarchy::TableHierarchy;
using pattern::CostFunction;
using pattern::CostKind;

struct HGridParam {
  std::uint64_t seed;
  std::size_t rows;
  std::size_t attrs;
  std::size_t domain;
  std::size_t k;
  double fraction;
};

std::string HParamName(const ::testing::TestParamInfo<HGridParam>& info) {
  const HGridParam& p = info.param;
  return "s" + std::to_string(p.seed) + "r" + std::to_string(p.rows) + "a" +
         std::to_string(p.attrs) + "d" + std::to_string(p.domain) + "k" +
         std::to_string(p.k) + "f" +
         std::to_string(static_cast<int>(p.fraction * 100));
}

/// Random table plus a random 2-level rollup per attribute: values are
/// grouped into ceil(domain / 2) random groups.
struct Instance {
  Table table;
  TableHierarchy hierarchy;
};

Instance MakeInstance(const HGridParam& p) {
  Rng rng(p.seed);
  std::vector<std::string> names;
  for (std::size_t a = 0; a < p.attrs; ++a) {
    names.push_back("D" + std::to_string(a));
  }
  TableBuilder builder(names, "m");
  for (std::size_t r = 0; r < p.rows; ++r) {
    std::vector<std::string> values;
    for (std::size_t a = 0; a < p.attrs; ++a) {
      values.push_back("v" + std::to_string(rng.NextBounded(p.domain)));
    }
    std::vector<std::string_view> views(values.begin(), values.end());
    EXPECT_TRUE(
        builder.AddRow(views, static_cast<double>(1 + rng.NextBounded(9)))
            .ok());
  }
  Table table = std::move(builder).Build();

  std::vector<std::pair<std::size_t, AttributeHierarchy>> overrides;
  for (std::size_t a = 0; a < p.attrs; ++a) {
    std::vector<std::pair<std::string, std::string>> edges;
    const std::size_t groups = (table.domain_size(a) + 1) / 2;
    // Leave values unattached (roots) with probability ~1/4 to exercise
    // mixed-depth forests.
    for (ValueId v = 0; v < table.domain_size(a); ++v) {
      if (rng.NextBool(0.25)) continue;
      edges.emplace_back(table.dictionary(a).Name(v),
                         StrFormat("g%zu_%llu", a,
                                   static_cast<unsigned long long>(
                                       rng.NextBounded(groups))));
    }
    if (edges.empty()) continue;
    auto h = AttributeHierarchy::Build(table.dictionary(a), edges);
    EXPECT_TRUE(h.ok()) << h.status().ToString();
    overrides.emplace_back(a, std::move(*h));
  }
  auto th = TableHierarchy::Build(table, std::move(overrides));
  EXPECT_TRUE(th.ok());
  return Instance{std::move(table), std::move(*th)};
}

class HierarchyEquivalenceTest : public ::testing::TestWithParam<HGridParam> {
};

TEST_P(HierarchyEquivalenceTest, OptimizedEqualsEnumerated) {
  const HGridParam& param = GetParam();
  Instance instance = MakeInstance(param);
  const CostFunction cost_fn(CostKind::kMax);

  auto system =
      HPatternSystem::Build(instance.table, instance.hierarchy, cost_fn);
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  CwscOptions opts{param.k, param.fraction};
  auto unopt = RunCwsc(system->set_system(), opts);
  auto opt = RunHierarchicalCwsc(instance.table, instance.hierarchy, cost_fn,
                                 opts);
  ASSERT_EQ(unopt.ok(), opt.ok())
      << unopt.status().ToString() << " vs " << opt.status().ToString();
  if (!unopt.ok()) return;

  ASSERT_EQ(opt->patterns.size(), unopt->sets.size());
  for (std::size_t i = 0; i < opt->patterns.size(); ++i) {
    EXPECT_EQ(opt->patterns[i], system->pattern(unopt->sets[i]))
        << "pick " << i << ": "
        << opt->patterns[i].ToString(instance.table, instance.hierarchy)
        << " vs "
        << system->pattern(unopt->sets[i])
               .ToString(instance.table, instance.hierarchy);
  }
  EXPECT_NEAR(opt->total_cost, unopt->total_cost, 1e-9);
  EXPECT_EQ(opt->covered, unopt->covered);
}

INSTANTIATE_TEST_SUITE_P(
    RandomHierarchies, HierarchyEquivalenceTest,
    ::testing::Values(HGridParam{1, 40, 2, 4, 3, 0.5},
                      HGridParam{2, 40, 2, 4, 3, 0.8},
                      HGridParam{3, 60, 3, 3, 4, 0.4},
                      HGridParam{4, 60, 3, 5, 4, 0.6},
                      HGridParam{5, 80, 2, 6, 5, 0.5},
                      HGridParam{6, 80, 3, 4, 2, 0.7},
                      HGridParam{7, 100, 2, 5, 6, 0.3},
                      HGridParam{8, 100, 3, 3, 3, 1.0},
                      HGridParam{9, 50, 4, 3, 4, 0.5},
                      HGridParam{10, 120, 3, 4, 5, 0.45}),
    HParamName);

}  // namespace
}  // namespace scwsc
