#include "src/pattern/opt_cmc.h"

#include "src/common/bitset.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/cmc.h"
#include "src/gen/lbl_synth.h"
#include "src/gen/toy.h"
#include "src/pattern/codec.h"
#include "src/table/builder.h"
#include "src/common/rng.h"
#include "src/pattern/pattern_system.h"
#include "tests/test_util.h"

namespace scwsc {
namespace {

using pattern::CostFunction;
using pattern::CostKind;
using pattern::PatternStats;
using pattern::RunOptimizedCmc;

TEST(OptCmcTest, RejectsBadOptions) {
  Table table = gen::MakeEntitiesTable();
  CostFunction cost(CostKind::kMax);
  CmcOptions opts;
  opts.k = 0;
  EXPECT_TRUE(RunOptimizedCmc(table, cost, opts).status().IsInvalidArgument());
  opts = CmcOptions{};
  opts.b = -1;
  EXPECT_TRUE(RunOptimizedCmc(table, cost, opts).status().IsInvalidArgument());
}

TEST(OptCmcTest, ZeroTargetIsEmpty) {
  Table table = gen::MakeEntitiesTable();
  CmcOptions opts;
  opts.coverage_fraction = 0.0;
  auto solution = RunOptimizedCmc(table, CostFunction(CostKind::kMax), opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->patterns.empty());
}

TEST(OptCmcTest, MeetsRelaxedTargetWithinSetBound) {
  Table table = gen::MakeEntitiesTable();
  CostFunction cost(CostKind::kMax);
  for (std::size_t k : {1u, 2u, 3u}) {
    for (double s : {0.3, 0.6, 1.0}) {
      CmcOptions opts;
      opts.k = k;
      opts.coverage_fraction = s;
      auto solution = RunOptimizedCmc(table, cost, opts);
      ASSERT_TRUE(solution.ok())
          << "k=" << k << " s=" << s << ": " << solution.status().ToString();
      const std::size_t relaxed = SetSystem::CoverageTarget(
          (1.0 - 1.0 / M_E) * s, table.num_rows());
      EXPECT_GE(solution->covered, relaxed);
      EXPECT_LE(solution->patterns.size(), CmcMaxSelectable(k, 0.0, 1));
    }
  }
}

TEST(OptCmcTest, StrictModeReachesFullTarget) {
  Table table = gen::MakeEntitiesTable();
  CmcOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  opts.relax_coverage = false;
  auto solution = RunOptimizedCmc(table, CostFunction(CostKind::kMax), opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_GE(solution->covered, 9u);
}

TEST(OptCmcTest, EpsilonVariantBoundsSolutionSize) {
  Table table = gen::MakeEntitiesTable();
  CmcOptions opts;
  opts.k = 3;
  opts.coverage_fraction = 1.0;
  opts.epsilon = 1.0;
  opts.relax_coverage = false;
  auto solution = RunOptimizedCmc(table, CostFunction(CostKind::kMax), opts);
  ASSERT_TRUE(solution.ok());
  EXPECT_LE(solution->patterns.size(),
            static_cast<std::size_t>((1.0 + opts.epsilon) * double(opts.k)));
  EXPECT_EQ(solution->covered, 16u);
}

TEST(OptCmcTest, SelectionsAreDistinctPatterns) {
  Table table = gen::MakeEntitiesTable();
  CmcOptions opts;
  opts.k = 3;
  opts.coverage_fraction = 0.9;
  auto solution = RunOptimizedCmc(table, CostFunction(CostKind::kMax), opts);
  ASSERT_TRUE(solution.ok());
  for (std::size_t i = 0; i < solution->patterns.size(); ++i) {
    for (std::size_t j = i + 1; j < solution->patterns.size(); ++j) {
      EXPECT_FALSE(solution->patterns[i] == solution->patterns[j]);
    }
  }
}

TEST(OptCmcTest, SolutionCostMatchesRecomputation) {
  Table table = gen::MakeEntitiesTable();
  CostFunction cost(CostKind::kMax);
  CmcOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 0.6;
  auto solution = RunOptimizedCmc(table, cost, opts);
  ASSERT_TRUE(solution.ok());
  double recomputed = 0.0;
  DynamicBitset covered(table.num_rows());
  for (const auto& p : solution->patterns) {
    std::vector<RowId> ben;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      if (p.Matches(table, r)) {
        ben.push_back(r);
        covered.set(r);
      }
    }
    recomputed += cost.Compute(table, ben);
  }
  EXPECT_NEAR(solution->total_cost, recomputed, 1e-9);
  EXPECT_EQ(solution->covered, covered.count());
}

TEST(OptCmcTest, BudgetRoundsAreCounted) {
  Table table = gen::MakeEntitiesTable();
  PatternStats stats;
  CmcOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  opts.relax_coverage = false;
  auto solution =
      RunOptimizedCmc(table, CostFunction(CostKind::kMax), opts, &stats);
  ASSERT_TRUE(solution.ok());
  EXPECT_GE(stats.budget_rounds, 1u);
  EXPECT_GT(stats.final_budget, 0.0);
  EXPECT_GT(stats.patterns_considered, 0u);
}

TEST(OptCmcTest, CoverageMatchesGenericCmcOnToy) {
  // The optimized and unoptimized CMC need not pick identical patterns (the
  // lattice pop order vs per-level greedy differ), but both must satisfy
  // the same coverage/size envelope with comparable cost.
  Table table = gen::MakeEntitiesTable();
  CostFunction cost(CostKind::kMax);
  auto system = pattern::PatternSystem::Build(table, cost);
  ASSERT_TRUE(system.ok());
  CmcOptions opts;
  opts.k = 2;
  opts.coverage_fraction = 9.0 / 16.0;
  opts.relax_coverage = false;
  auto generic = RunCmc(system->set_system(), opts);
  auto optimized = RunOptimizedCmc(table, cost, opts);
  ASSERT_TRUE(generic.ok());
  ASSERT_TRUE(optimized.ok());
  EXPECT_GE(optimized->covered, 9u);
  EXPECT_GE(generic->solution.covered, 9u);
  EXPECT_LE(optimized->patterns.size(), CmcMaxSelectable(opts.k, 0.0, 1));
}

TEST(OptCmcTest, GenericKeyFallbackHandlesWideTables) {
  // Domains too wide for the 64-bit packed codec force the Pattern-keyed
  // implementation path; results must still satisfy the CMC envelope.
  TableBuilder builder({"a", "b", "c", "d", "e", "f"}, "m");
  Rng rng(55);
  for (int i = 0; i < 3000; ++i) {
    std::vector<std::string> row;
    std::vector<std::string_view> views;
    for (int attr = 0; attr < 6; ++attr) {
      // active domains of ~2900 values need 12 bits each; 6 * 12 = 72 > 64.
      row.push_back("v" + std::to_string(rng.NextBounded(40'000)));
    }
    for (auto& v : row) views.push_back(v);
    ASSERT_TRUE(builder.AddRow(views, rng.NextDouble(1.0, 50.0)).ok());
  }
  Table table = std::move(builder).Build();
  ASSERT_FALSE(pattern::PatternCodec(table).fits());

  CmcOptions opts;
  opts.k = 3;
  opts.coverage_fraction = 0.4;
  auto solution = RunOptimizedCmc(table, CostFunction(CostKind::kMax), opts);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  const std::size_t relaxed = SetSystem::CoverageTarget(
      (1.0 - 1.0 / M_E) * 0.4, table.num_rows());
  EXPECT_GE(solution->covered, relaxed);
  EXPECT_LE(solution->patterns.size(), CmcMaxSelectable(3, 0.0, 1));
}

TEST(OptCmcTest, ScaleRunStaysWithinEnumerationCount) {
  gen::LblSynthSpec spec;
  spec.num_rows = 1500;
  spec.seed = 8;
  auto table = gen::MakeLblSynth(spec);
  ASSERT_TRUE(table.ok());
  auto enumerated = pattern::EnumerateAllPatterns(*table);
  ASSERT_TRUE(enumerated.ok());
  PatternStats stats;
  CmcOptions opts;
  opts.k = 10;
  opts.coverage_fraction = 0.3;
  auto solution = RunOptimizedCmc(*table, CostFunction(CostKind::kMax), opts,
                                  &stats);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  // Per-round considered patterns cannot exceed the total distinct pattern
  // count; across rounds the ratio to enumeration measures the Fig. 6 win.
  EXPECT_LE(stats.patterns_considered,
            stats.budget_rounds * enumerated->size());
}

}  // namespace
}  // namespace scwsc
