// EXP-T5 — Table V: running time (seconds) of CWSC vs CMC over the same
// (b, ε, ŝ) grid as Table IV.
//
// Expected shape: CWSC at least ~2x faster than every CMC configuration;
// larger b decreases CMC's time (fewer budget rounds); larger ε increases
// it (more levels to maintain).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/pattern/opt_cmc.h"
#include "src/pattern/opt_cwsc.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-T5", "Table V: running time (s), CWSC vs CMC(b, eps)");

  const std::size_t rows = ScaledRows(700'000);
  Table base = MakeTrace(rows);
  const pattern::CostFunction cost_fn(pattern::CostKind::kMax);
  const std::vector<double> fractions = {0.3, 0.4, 0.5, 0.6};

  std::printf("%-26s", "Algorithm");
  for (double s : fractions) std::printf(" s=%-10.1f", s);
  std::printf("\n");

  {
    std::printf("%-26s", "CWSC");
    std::vector<std::string> csv = {"CWSC"};
    for (double s : fractions) {
      Stopwatch sw;
      auto solution = pattern::RunOptimizedCwsc(base, cost_fn, {10, s});
      const double secs = sw.ElapsedSeconds();
      SCWSC_CHECK(solution.ok(), "CWSC failed");
      std::printf(" %-12s", Secs(secs).c_str());
      csv.push_back(Secs(secs));
    }
    std::printf("\n");
    PrintCsvRow("table5", csv);
  }

  for (double b : {0.5, 1.0, 2.0}) {
    for (double eps : {1.0, 2.0}) {
      const std::string name = StrFormat("CMC (b=%g, eps=%g)", b, eps);
      std::printf("%-26s", name.c_str());
      std::vector<std::string> csv = {name};
      for (double s : fractions) {
        CmcOptions opts;
        opts.k = 10;
        opts.coverage_fraction = s;
        opts.b = b;
        opts.epsilon = eps;
        opts.relax_coverage = false;
        Stopwatch sw;
        auto solution = pattern::RunOptimizedCmc(base, cost_fn, opts);
        const double secs = sw.ElapsedSeconds();
        SCWSC_CHECK(solution.ok(), "CMC failed");
        std::printf(" %-12s", Secs(secs).c_str());
        csv.push_back(Secs(secs));
      }
      std::printf("\n");
      PrintCsvRow("table5", csv);
    }
  }
  return 0;
}
