// EXP-T5 — Table V: running time (seconds) of CWSC vs CMC over the same
// (b, ε, ŝ) grid as Table IV.
//
// Expected shape: CWSC at least ~2x faster than every CMC configuration;
// larger b decreases CMC's time (fewer budget rounds); larger ε increases
// it (more levels to maintain).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/strings.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-T5", "Table V: running time (s), CWSC vs CMC(b, eps)");

    const api::InstancePtr instance = MakeTraceSnapshot(700'000);
  const std::vector<double> fractions = {0.3, 0.4, 0.5, 0.6};

  std::printf("%-26s", "Algorithm");
  for (double s : fractions) std::printf(" s=%-10.1f", s);
  std::printf("\n");

  {
    std::printf("%-26s", "CWSC");
    std::vector<std::string> csv = {"CWSC"};
    for (double s : fractions) {
      api::SolveResult r = MustSolve("opt-cwsc", MakeRequest(instance, 10, s));
      std::printf(" %-12s", Secs(r.seconds).c_str());
      csv.push_back(Secs(r.seconds));
    }
    std::printf("\n");
    PrintCsvRow("table5", csv);
  }

  for (double b : {0.5, 1.0, 2.0}) {
    for (double eps : {1.0, 2.0}) {
      const std::string name = StrFormat("CMC (b=%g, eps=%g)", b, eps);
      std::printf("%-26s", name.c_str());
      std::vector<std::string> csv = {name};
      for (double s : fractions) {
        api::SolveResult r = MustSolve(
            "opt-cmc",
            MakeRequest(instance, 10, s,
                        {StrFormat("b=%g", b), StrFormat("epsilon=%g", eps),
                         "strict=true"}));
        std::printf(" %-12s", Secs(r.seconds).c_str());
        csv.push_back(Secs(r.seconds));
      }
      std::printf("\n");
      PrintCsvRow("table5", csv);
    }
  }
  return 0;
}
