// EXP-MICRO — google-benchmark micro-benchmarks of the pattern substrate:
// enumeration throughput, posting-list benefit computation, lattice child
// grouping and pattern matching.

#include <benchmark/benchmark.h>

#include <numeric>

#include "bench/bench_util.h"
#include "src/pattern/benefit_index.h"
#include "src/pattern/enumerate.h"
#include "src/pattern/lattice.h"
#include "src/pattern/opt_cwsc.h"

namespace scwsc {
namespace {

const Table& Trace(std::size_t rows) {
  static const Table* table = nullptr;
  static std::size_t cached_rows = 0;
  if (table == nullptr || cached_rows != rows) {
    delete table;
    table = new Table(bench::MakeTrace(rows));
    cached_rows = rows;
  }
  return *table;
}

void BM_EnumerateAllPatterns(benchmark::State& state) {
  const Table& table = Trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto patterns = pattern::EnumerateAllPatterns(table);
    benchmark::DoNotOptimize(patterns);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(table.num_rows()));
}
BENCHMARK(BM_EnumerateAllPatterns)->Arg(2000)->Arg(20'000)->Arg(60'000);

void BM_BenefitIndexBuild(benchmark::State& state) {
  const Table& table = Trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pattern::BenefitIndex index(table);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_BenefitIndexBuild)->Arg(20'000)->Arg(60'000);

void BM_BenefitLookup(benchmark::State& state) {
  const Table& table = Trace(20'000);
  pattern::BenefitIndex index(table);
  // Fully-wildcarded except protocol: large posting list.
  pattern::Pattern p = pattern::Pattern::AllWildcards(5).WithValue(0, 0);
  for (auto _ : state) {
    auto ben = index.Ben(p);
    benchmark::DoNotOptimize(ben);
  }
}
BENCHMARK(BM_BenefitLookup);

void BM_GroupChildren(benchmark::State& state) {
  const Table& table = Trace(static_cast<std::size_t>(state.range(0)));
  pattern::Pattern root = pattern::Pattern::AllWildcards(5);
  std::vector<RowId> rows(table.num_rows());
  std::iota(rows.begin(), rows.end(), RowId{0});
  for (auto _ : state) {
    auto groups = pattern::GroupChildren(table, root, rows);
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(table.num_rows()));
}
BENCHMARK(BM_GroupChildren)->Arg(20'000)->Arg(60'000);

void BM_PatternMatchScan(benchmark::State& state) {
  const Table& table = Trace(20'000);
  pattern::Pattern p = pattern::Pattern::AllWildcards(5).WithValue(0, 0)
                           .WithValue(3, 0);
  for (auto _ : state) {
    std::size_t matches = 0;
    for (RowId r = 0; r < table.num_rows(); ++r) {
      if (p.Matches(table, r)) ++matches;
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(table.num_rows()));
}
BENCHMARK(BM_PatternMatchScan);

void BM_OptimizedCwscEndToEnd(benchmark::State& state) {
  const Table& table = Trace(static_cast<std::size_t>(state.range(0)));
  const pattern::CostFunction cost_fn(pattern::CostKind::kMax);
  for (auto _ : state) {
    auto solution =
        pattern::RunOptimizedCwsc(table, cost_fn, {10, 0.3});
    benchmark::DoNotOptimize(solution);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(table.num_rows()));
}
BENCHMARK(BM_OptimizedCwscEndToEnd)->Arg(20'000)->Arg(60'000);

}  // namespace
}  // namespace scwsc

BENCHMARK_MAIN();
