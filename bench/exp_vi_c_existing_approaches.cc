// EXP-C1 — §VI-C: existing two-of-three approaches are unsuitable.
//
// The partial maximum coverage heuristic [10] ignores cost: the paper
// reports a constant cost of 229 regardless of ŝ — about 10x CWSC's cost
// at ŝ = 0.3 and over 3x at ŝ = 0.6. Reproduced here under the sum cost
// (where cost differences across pattern sizes are sharpest) and the max
// cost.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-C1",
              "§VI-C: partial max coverage pays a large cost multiple");

  const std::size_t rows = ScaledRows(700'000);
  Table base = MakeTrace(rows);

  for (auto kind : {pattern::CostKind::kSum, pattern::CostKind::kMax}) {
    const pattern::CostFunction cost_fn(kind);
    const api::InstancePtr instance = MakeSnapshot(Table(base), kind);

    // Partial max coverage picks its full k = 10 sets by benefit only; its
    // cost is the same whatever ŝ is ("regardless of the coverage
    // fraction").
    api::SolveResult maxcov =
        MustSolve("greedy-max-coverage", MakeRequest(instance, 10, 0.0));

    std::printf("\ncost function: %s\n", cost_fn.Name().c_str());
    std::printf("%8s %16s %16s %10s\n", "s", "maxcov cost", "CWSC cost",
                "ratio");
    for (double s : {0.3, 0.4, 0.5, 0.6}) {
      api::SolveResult cwsc = MustSolve("cwsc", MakeRequest(instance, 10, s));
      const double ratio = maxcov.total_cost / cwsc.total_cost;
      std::printf("%8.1f %16s %16s %9.1fx\n", s,
                  FormatNumber(maxcov.total_cost, 6).c_str(),
                  FormatNumber(cwsc.total_cost, 6).c_str(), ratio);
      PrintCsvRow("exp_vi_c",
                  {cost_fn.Name(), StrFormat("%.1f", s),
                   FormatNumber(maxcov.total_cost, 6),
                   FormatNumber(cwsc.total_cost, 6),
                   StrFormat("%.2f", ratio)});
    }
  }
  return 0;
}
