// BENCH_chaos — an open-loop chaos soak of the serve path.
//
// One synthetic trace, one shared snapshot, and a mixed deterministic
// workload pushed through a SolveScheduler three times:
//
//  * serial: a plain registry loop computing the legitimate fingerprint of
//    every (solver, k, ŝ) the workload — or any degradation of it — can
//    produce. No faults, no scheduler.
//  * fault-free: a scheduler with the full resilience stack configured
//    (retries, breakers, ladder, watchdog) but NO FaultPlan installed. This
//    arm must be bit-identical to serial: resilience machinery at rest
//    changes nothing.
//  * chaos: the same workload under an installed, seeded FaultPlan arming
//    every injection point at once (solver errors/throws/delays, snapshot
//    materialization failures, result-cache corruption, pool task loss)
//    while the scheduler retries, breaks, degrades and watchdogs its way
//    through.
//
// Gates (exit 1 on any failure), written to BENCH_chaos.json:
//   g1 every chaos future completes (no deadlock, no lost promise);
//   g2 failure rate <= injected per-attempt error rate x a bounded
//      amplification factor — recovery must shrink the blast radius, not
//      grow it;
//   g3 zero corrupt results served: every successful outcome fingerprints
//      identically to a legitimate serial solve of that request (its own
//      solver or a ladder fallback);
//   g4 p99 latency of unaffected chaos jobs (first-attempt successes, no
//      degradation) within 2x the fault-free arm's p99 (plus a floor for
//      timer noise);
//   g5 the fault-free arm is bit-identical to serial;
//   g6 the chaos arm runs under a telemetry pump with a deliberately
//      untenable latency SLO: the storm must produce at least one recorded
//      violation whose auto-dumped flight-recorder trace is valid
//      Chrome-trace JSON;
//   g7 the per-solver latency sketches merged across the chaos arm agree
//      with the exact nearest-rank p99 of the same samples within the
//      sketch's stated relative-error bound.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/fault.h"
#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/sketch.h"
#include "src/serve/cache.h"
#include "src/serve/json.h"
#include "src/serve/resilience.h"
#include "src/serve/scheduler.h"
#include "src/serve/slo.h"

namespace scwsc {
namespace {

struct Combo {
  std::string solver;
  std::size_t k = 0;
  double coverage = 0.0;
};

constexpr std::size_t kRepeats = 6;       // jittered requests per base combo
constexpr std::size_t kChaosPasses = 3;   // the soak re-enqueues the list
constexpr std::uint64_t kDefaultSeed = 20260808;

// Per-attempt probabilities for the storm. The per-attempt injected error
// rate (error + throw + materialize; delay and cache corruption do not fail
// an attempt, task loss is healed by the watchdog) anchors gate g2.
constexpr double kPErr = 0.10, kPThrow = 0.02, kPDelay = 0.05;
constexpr double kPMaterialize = 0.02, kPCorrupt = 0.10, kPTaskLoss = 0.05;
constexpr double kInjectedRate = kPErr + kPThrow + kPMaterialize;
constexpr double kAmplificationBound = 2.0;
constexpr double kLatencyFloorSeconds = 0.05;

/// The base combos, expanded so every repeat is a distinct request (a small
/// coverage jitter). Pass 1 of the soak therefore runs real solves through
/// the injection points; later passes repeat the same requests and exercise
/// the result cache (and its corruption point) instead.
std::vector<Combo> Workload() {
  const std::vector<Combo> base = {
      {"cwsc", 6, 0.5},
      {"cwsc", 8, 0.7},
      {"cmc", 6, 0.5},
      {"greedy-wsc", 6, 0.5},
      {"greedy-max-coverage", 8, 0.8},
  };
  std::vector<Combo> expanded;
  for (const Combo& combo : base) {
    for (std::size_t rep = 0; rep < kRepeats; ++rep) {
      Combo jittered = combo;
      jittered.coverage += 0.002 * static_cast<double>(rep);
      expanded.push_back(jittered);
    }
  }
  return expanded;
}

struct Fingerprint {
  std::vector<std::string> labels;
  double total_cost = 0.0;
  std::size_t covered = 0;

  bool operator==(const Fingerprint& other) const {
    return labels == other.labels && total_cost == other.total_cost &&
           covered == other.covered;
  }
};

Fingerprint FingerprintOf(const api::SolveResult& result) {
  return {result.labels, result.total_cost, result.covered};
}

serve::SolveJob MakeJob(const api::InstancePtr& instance, const Combo& combo,
                        std::size_t pass, std::size_t repeat) {
  serve::SolveJob job;
  job.solver = combo.solver;
  auto request = api::SolveRequest::Builder(instance)
                     .WithK(combo.k)
                     .WithCoverage(combo.coverage)
                     .WithLabel(combo.solver + "-p" + std::to_string(pass) +
                                "-r" + std::to_string(repeat))
                     .Build();
  SCWSC_CHECK(request.ok(), "bad bench request: %s",
              request.status().ToString().c_str());
  job.request = *std::move(request);
  return job;
}

serve::SchedulerOptions ResilientOptions() {
  serve::SchedulerOptions options;
  serve::ResilienceOptions& res = options.resilience;
  res.retry.max_attempts = 5;
  res.retry.initial_backoff_ms = 0.2;
  res.retry.max_backoff_ms = 5.0;
  res.retry_budget.tokens_per_second = 500.0;
  res.retry_budget.burst = 500.0;
  res.breaker.enabled = true;
  res.breaker.failure_threshold = 8;
  res.breaker.open_seconds = 0.05;
  res.breaker.half_open_successes = 1;
  res.ladder = serve::DegradationLadder::Default();
  res.watchdog = true;
  res.watchdog_interval_seconds = 0.02;
  res.watchdog_stale_seconds = 0.25;
  return options;
}

/// Serial fingerprints of every solve the chaos arm could legitimately
/// serve: each workload combo under its requested solver and every solver
/// reachable from it down the degradation ladder.
std::map<std::string, Fingerprint> LegitimateFingerprints(
    const api::InstancePtr& instance, const std::vector<Combo>& combos) {
  const serve::DegradationLadder ladder = serve::DegradationLadder::Default();
  std::map<std::string, Fingerprint> legit;  // "solver/k/coverage" -> print
  for (const Combo& combo : combos) {
    std::string solver = combo.solver;
    for (;;) {
      const std::string key = solver + "/" + std::to_string(combo.k) + "/" +
                              std::to_string(combo.coverage);
      if (legit.find(key) == legit.end()) {
        Combo shifted = combo;
        shifted.solver = solver;
        serve::SolveJob job = MakeJob(instance, shifted, 0, 0);
        auto result =
            api::SolverRegistry::Global().Solve(job.solver, job.request);
        SCWSC_CHECK(result.ok(), "serial %s failed: %s", solver.c_str(),
                    result.status().ToString().c_str());
        legit[key] = FingerprintOf(*result);
      }
      const std::string* fallback = ladder.FallbackFor(solver);
      if (fallback == nullptr) break;
      solver = *fallback;
    }
  }
  return legit;
}

struct ArmStats {
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t degraded = 0;
  std::size_t incomplete = 0;      // futures that never resolved (gate g1)
  std::size_t corrupt_served = 0;  // ok results with no legitimate print
  std::size_t retried_jobs = 0;    // attempts > 1
  double wall_seconds = 0.0;
  std::vector<double> unaffected_latencies;  // sorted run_seconds
  // Sorted queue+run seconds of EVERY resolved future — the same values the
  // scheduler feeds its serve.latency_seconds sketches, so the sketch
  // accuracy gate (g7) compares like with like.
  std::vector<double> all_latencies;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// Pushes `passes` copies of the workload through `scheduler` open-loop
/// (every job enqueued before any future is waited on) and audits the
/// outcomes against the legitimate fingerprint set.
ArmStats RunArm(const api::InstancePtr& instance,
                const std::vector<Combo>& combos, std::size_t passes,
                serve::SolveScheduler& scheduler,
                const std::map<std::string, Fingerprint>& legit) {
  const serve::DegradationLadder ladder = serve::DegradationLadder::Default();
  struct Pending {
    Combo combo;
    std::future<serve::JobOutcome> future;
  };
  std::vector<Pending> pending;
  ArmStats stats;
  Stopwatch wall;
  for (std::size_t pass = 0; pass < passes; ++pass) {
    for (std::size_t i = 0; i < combos.size(); ++i) {
      auto future = scheduler.Enqueue(MakeJob(instance, combos[i], pass, i));
      SCWSC_CHECK(future.ok(), "enqueue rejected: %s",
                  future.status().ToString().c_str());
      pending.push_back(Pending{combos[i], std::move(*future)});
    }
  }
  stats.jobs = pending.size();

  for (Pending& p : pending) {
    // Gate g1: the future must complete. 120s is far beyond any legitimate
    // solve here; a miss means a lost promise or a deadlock.
    if (p.future.wait_for(std::chrono::seconds(120)) !=
        std::future_status::ready) {
      ++stats.incomplete;
      continue;
    }
    serve::JobOutcome outcome = p.future.get();
    stats.all_latencies.push_back(outcome.queue_seconds +
                                  outcome.run_seconds);
    if (!outcome.result.ok()) {
      ++stats.failed;
      continue;
    }
    ++stats.ok;
    if (outcome.attempts > 1) ++stats.retried_jobs;
    if (!outcome.result->degraded_from.empty()) ++stats.degraded;

    // Gate g3: the served result must match a legitimate serial solve —
    // the requested solver's own fingerprint or one of its ladder
    // fallbacks'. Anything else is a corrupt result escaping the caches.
    bool legitimate = false;
    std::string solver = p.combo.solver;
    const Fingerprint served = FingerprintOf(*outcome.result);
    for (;;) {
      const std::string key = solver + "/" + std::to_string(p.combo.k) +
                              "/" + std::to_string(p.combo.coverage);
      auto it = legit.find(key);
      if (it != legit.end() && it->second == served) {
        legitimate = true;
        break;
      }
      const std::string* fallback = ladder.FallbackFor(solver);
      if (fallback == nullptr) break;
      solver = *fallback;
    }
    if (!legitimate) ++stats.corrupt_served;

    // Gate g4 sample: jobs the faults did not touch at all.
    if (outcome.attempts <= 1 && outcome.result->degraded_from.empty()) {
      stats.unaffected_latencies.push_back(outcome.run_seconds);
    }
  }
  stats.wall_seconds = wall.ElapsedSeconds();
  std::sort(stats.unaffected_latencies.begin(),
            stats.unaffected_latencies.end());
  std::sort(stats.all_latencies.begin(), stats.all_latencies.end());
  return stats;
}

serve::JsonValue ArmJson(const ArmStats& stats) {
  serve::JsonObject arm;
  arm["jobs"] = stats.jobs;
  arm["ok"] = stats.ok;
  arm["failed"] = stats.failed;
  arm["degraded"] = stats.degraded;
  arm["incomplete"] = stats.incomplete;
  arm["corrupt_served"] = stats.corrupt_served;
  arm["retried_jobs"] = stats.retried_jobs;
  arm["wall_seconds"] = stats.wall_seconds;
  arm["p99_unaffected_seconds"] =
      Percentile(stats.unaffected_latencies, 0.99);
  return serve::JsonValue(std::move(arm));
}

}  // namespace
}  // namespace scwsc

int main(int argc, char** argv) {
  using namespace scwsc;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_chaos.json";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : kDefaultSeed;

  bench::PrintBanner("serve_chaos",
                     "serve layer under a seeded fault storm");

  const std::size_t rows = bench::ScaledRows(20000);
  api::InstancePtr instance = bench::MakeTraceSnapshot(20000);
  const std::vector<Combo> combos = Workload();

  // Legitimate fingerprints first, while no plan is installed.
  const std::map<std::string, Fingerprint> legit =
      LegitimateFingerprints(instance, combos);

  // Arm 1 — fault-free: resilience configured, no plan installed.
  ThreadPool pool(0);  // hardware concurrency
  ArmStats faultfree;
  {
    serve::SolveScheduler scheduler(&pool, ResilientOptions());
    faultfree = RunArm(instance, combos, 1, scheduler, legit);
  }

  // Arm 2 — chaos: same workload, every injection point armed, and the
  // telemetry pump running with an untenable latency SLO (1 microsecond
  // p99) so the storm is guaranteed to trip at least one violation and
  // auto-dump a flight-recorder trace (gate g6).
  ArmStats chaos_stats;
  serve::JsonObject fired;
  std::uint64_t breaker_opened = 0, watchdog_redispatched = 0,
                results_quarantined = 0, retries_attempted = 0;
  std::uint64_t slo_violations = 0;
  std::vector<std::string> slo_dumps;
  obs::QuantileSketch merged_latency;
  bool have_latency_sketch = false;
  const std::string telemetry_jsonl = out_path + ".telemetry.jsonl";
  const std::string slo_dump_path = out_path + ".slo_trace.json";
  {
    ScopedFaultPlan chaos(seed);
    chaos.plan().Arm(FaultPoint::kSolverError, kPErr);
    chaos.plan().Arm(FaultPoint::kSolverThrow, kPThrow);
    chaos.plan().Arm(FaultPoint::kSolverDelay, kPDelay);
    chaos.plan().set_solver_delay_ms(1);
    chaos.plan().Arm(FaultPoint::kSnapshotMaterialize, kPMaterialize);
    chaos.plan().Arm(FaultPoint::kResultCacheCorrupt, kPCorrupt);
    chaos.plan().Arm(FaultPoint::kPoolTaskLoss, kPTaskLoss);

    serve::SchedulerOptions chaos_options = ResilientOptions();
    serve::TelemetryOptions& tel = chaos_options.telemetry;
    tel.interval_seconds = 0.05;
    tel.jsonl_path = telemetry_jsonl;
    tel.slo_dump_path = slo_dump_path;
    auto rule = serve::ParseSloRule("p99_latency_ms<=0.001");
    SCWSC_CHECK(rule.ok(), "slo rule: %s",
                rule.status().ToString().c_str());
    tel.slo_rules.push_back(std::move(rule).value());

    serve::SolveScheduler scheduler(&pool, chaos_options);
    chaos_stats = RunArm(instance, combos, kChaosPasses, scheduler, legit);
    scheduler.FlushTelemetry();

    obs::MetricRegistry& metrics = scheduler.metrics();
    slo_violations = metrics.CounterValue("serve.slo.violations");
    if (scheduler.telemetry() != nullptr) {
      slo_dumps = scheduler.telemetry()->dump_paths();
    }
    // Merge every per-solver latency sketch member for gate g7; the merged
    // view is exactly what the pump's SLO evaluation sees.
    for (const auto& [name, sketch] : metrics.SketchValues()) {
      if (name.rfind("serve.latency_seconds#", 0) != 0) continue;
      if (!have_latency_sketch) {
        merged_latency = sketch;
        have_latency_sketch = true;
      } else {
        const Status merged = merged_latency.Merge(sketch);
        SCWSC_CHECK(merged.ok(), "sketch merge: %s",
                    merged.ToString().c_str());
      }
    }
    breaker_opened = metrics.CounterValue("serve.breaker.opened");
    watchdog_redispatched =
        metrics.CounterValue("serve.watchdog.redispatched");
    results_quarantined =
        metrics.CounterValue("serve.result_cache.quarantined");
    retries_attempted = metrics.CounterValue("serve.retries.attempted");
    for (int p = 0; p < kNumFaultPoints; ++p) {
      const FaultPoint point = static_cast<FaultPoint>(p);
      serve::JsonObject entry;
      entry["draws"] = chaos.plan().draws(point);
      entry["fires"] = chaos.plan().fires(point);
      fired[FaultPointToString(point)] = serve::JsonValue(std::move(entry));
    }
  }

  // --- gates ---------------------------------------------------------------
  const bool g1_complete = chaos_stats.incomplete == 0;

  const double failure_rate =
      chaos_stats.jobs > 0
          ? static_cast<double>(chaos_stats.failed) /
                static_cast<double>(chaos_stats.jobs)
          : 0.0;
  const double failure_bound = kInjectedRate * kAmplificationBound;
  const bool g2_error_rate = failure_rate <= failure_bound;

  const bool g3_no_corruption = chaos_stats.corrupt_served == 0;

  const double baseline_p99 =
      Percentile(faultfree.unaffected_latencies, 0.99);
  const double chaos_p99 = Percentile(chaos_stats.unaffected_latencies, 0.99);
  const double latency_bound =
      std::max(2.0 * baseline_p99, kLatencyFloorSeconds);
  const bool g4_latency = chaos_p99 <= latency_bound;

  const bool g5_faultfree_clean =
      faultfree.incomplete == 0 && faultfree.failed == 0 &&
      faultfree.corrupt_served == 0 && faultfree.degraded == 0 &&
      faultfree.retried_jobs == 0;

  // Gate g6: the untenable SLO tripped, and the auto-dumped trace is valid
  // Chrome-trace JSON (an object carrying traceEvents).
  bool g6_slo_dump = slo_violations >= 1 && !slo_dumps.empty();
  if (g6_slo_dump) {
    auto dump = serve::ReadJsonFile(slo_dumps.front());
    g6_slo_dump = dump.ok() && dump->is_object() &&
                  dump->Find("traceEvents") != nullptr;
  }

  // Gate g7: the merged latency sketch's p99 agrees with the exact
  // nearest-rank p99 of the identical sample set within the sketch's
  // stated relative error (plus an absolute epsilon for sub-trackable
  // values).
  const double exact_p99 = Percentile(chaos_stats.all_latencies, 0.99);
  const double sketch_p99 =
      have_latency_sketch ? merged_latency.Quantile(0.99) : -1.0;
  const double sketch_alpha =
      have_latency_sketch ? merged_latency.relative_error()
                          : obs::QuantileSketch::kDefaultRelativeError;
  const double sketch_bound = sketch_alpha * exact_p99 + 1e-9;
  const bool g7_sketch_accurate =
      have_latency_sketch &&
      merged_latency.count() == chaos_stats.all_latencies.size() &&
      std::abs(sketch_p99 - exact_p99) <= sketch_bound;

  serve::JsonObject report;
  report["rows"] = rows;
  report["seed"] = static_cast<std::size_t>(seed);
  report["threads"] = static_cast<std::size_t>(pool.size());
  report["injected_rate"] = kInjectedRate;
  report["amplification_bound"] = kAmplificationBound;
  report["fault_free"] = ArmJson(faultfree);
  report["chaos"] = ArmJson(chaos_stats);
  report["failure_rate"] = failure_rate;
  report["failure_bound"] = failure_bound;
  report["baseline_p99_seconds"] = baseline_p99;
  report["chaos_p99_seconds"] = chaos_p99;
  report["latency_bound_seconds"] = latency_bound;
  report["faults"] = serve::JsonValue(std::move(fired));
  report["breaker_opened"] = breaker_opened;
  report["watchdog_redispatched"] = watchdog_redispatched;
  report["results_quarantined"] = results_quarantined;
  report["retries_attempted"] = retries_attempted;
  report["slo_violations"] = slo_violations;
  report["slo_dump"] = slo_dumps.empty() ? std::string() : slo_dumps.front();
  report["telemetry_jsonl"] = telemetry_jsonl;
  report["exact_p99_seconds"] = exact_p99;
  report["sketch_p99_seconds"] = sketch_p99;
  report["sketch_p99_bound_seconds"] = sketch_bound;
  serve::JsonObject gates;
  gates["all_futures_completed"] = g1_complete;
  gates["error_rate_bounded"] = g2_error_rate;
  gates["zero_corrupt_served"] = g3_no_corruption;
  gates["unaffected_p99_bounded"] = g4_latency;
  gates["fault_free_arm_clean"] = g5_faultfree_clean;
  gates["slo_violation_dumped"] = g6_slo_dump;
  gates["sketch_p99_within_bound"] = g7_sketch_accurate;
  report["gates"] = serve::JsonValue(std::move(gates));
  const bool pass = g1_complete && g2_error_rate && g3_no_corruption &&
                    g4_latency && g5_faultfree_clean && g6_slo_dump &&
                    g7_sketch_accurate;
  report["pass"] = pass;

  Status written =
      serve::WriteJsonFile(serve::JsonValue(std::move(report)), out_path);
  SCWSC_CHECK(written.ok(), "writing %s: %s", out_path.c_str(),
              written.ToString().c_str());

  bench::PrintCsvRow(
      "serve_chaos",
      {"jobs=" + std::to_string(chaos_stats.jobs),
       "failed=" + std::to_string(chaos_stats.failed),
       "degraded=" + std::to_string(chaos_stats.degraded),
       "retried=" + std::to_string(chaos_stats.retried_jobs),
       "quarantined=" + std::to_string(results_quarantined),
       "slo_violations=" + std::to_string(slo_violations),
       "pass=" + std::string(pass ? "1" : "0")});
  std::printf("# report -> %s\n", out_path.c_str());
  if (!slo_dumps.empty()) {
    std::printf("# slo trace -> %s\n", slo_dumps.front().c_str());
  }

  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: chaos gates: complete=%d error_rate=%d corruption=%d "
                 "latency=%d fault_free=%d slo_dump=%d sketch_p99=%d\n",
                 g1_complete, g2_error_rate, g3_no_corruption, g4_latency,
                 g5_faultfree_clean, g6_slo_dump, g7_sketch_accurate);
    return 1;
  }
  return 0;
}
