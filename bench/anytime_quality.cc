// BENCH_anytime — anytime (best-so-far) solution quality under RunContext
// deadlines and work budgets.
//
// Two tracks, each measured along two axes:
//
//  * greedy CWSC on a paper-scale random system: solution coverage as a
//    function of (a) wall-clock deadlines of 1/5/25/100 ms and (b)
//    deterministic element-recount budgets. A longer limit executes a
//    superset of the same deterministic pick sequence, so coverage must be
//    monotonically non-decreasing along both axes.
//
//  * exact branch-and-bound on a small instance: incumbent cost as a
//    function of the same deadlines and of node-expansion budgets. The
//    incumbent is only ever replaced by a cheaper feasible solution, so its
//    cost must be monotonically non-increasing along both axes.
//
// The budget axes are bit-deterministic and enforced (exit 1 on violation);
// the deadline axes depend on wall-clock scheduling and only warn, but in
// practice show the same shape. Results go to BENCH_anytime.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/run_context.h"
#include "src/common/stopwatch.h"
#include "src/core/cwsc.h"
#include "src/core/exact.h"
#include "src/core/instances.h"

namespace scwsc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Point {
  double limit = 0.0;  // deadline in ms, or budget in units
  bool interrupted = false;
  bool feasible = false;  // exact track: an incumbent exists
  std::size_t covered = 0;
  std::size_t sets = 0;
  double cost = 0.0;
  double seconds = 0.0;
};

/// Runs greedy CWSC under `ctx`; a trip yields the best-so-far payload.
Point RunGreedyPoint(const SetSystem& system, const CwscOptions& base,
                     RunContext& ctx) {
  CwscOptions opts = base;
  opts.run_context = &ctx;
  Point pt;
  Stopwatch watch;
  auto solution = RunCwsc(system, opts);
  pt.seconds = watch.ElapsedSeconds();
  const Solution* s = nullptr;
  if (solution.ok()) {
    s = &*solution;
  } else {
    SCWSC_CHECK(solution.status().IsInterruption(),
                "anytime greedy run failed outright");
    s = solution.status().payload<Solution>();
    SCWSC_CHECK(s != nullptr, "interruption carried no partial solution");
    pt.interrupted = true;
  }
  pt.covered = s->covered;
  pt.sets = s->sets.size();
  pt.cost = s->total_cost;
  pt.feasible = true;
  return pt;
}

/// Runs exact B&B under `ctx`; trips and max_nodes exhaustion both carry the
/// incumbent found so far (feasible == false when none was found yet).
Point RunExactPoint(const SetSystem& system, const ExactOptions& base,
                    RunContext& ctx) {
  ExactOptions opts = base;
  opts.run_context = &ctx;
  Point pt;
  Stopwatch watch;
  auto result = SolveExact(system, opts);
  pt.seconds = watch.ElapsedSeconds();
  const ExactResult* r = nullptr;
  if (result.ok()) {
    r = &*result;
    pt.feasible = true;
  } else {
    SCWSC_CHECK(result.status().IsInterruption(),
                "anytime exact run failed outright");
    r = result.status().payload<ExactResult>();
    SCWSC_CHECK(r != nullptr, "interruption carried no partial result");
    pt.interrupted = true;
    pt.feasible = !r->solution.sets.empty();
  }
  pt.covered = r->solution.covered;
  pt.sets = r->solution.sets.size();
  pt.cost = r->solution.total_cost;
  return pt;
}

bool CoverageNonDecreasing(const std::vector<Point>& pts) {
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].covered < pts[i - 1].covered) return false;
  }
  return true;
}

bool CostNonIncreasing(const std::vector<Point>& pts) {
  double prev = kInf;
  for (const Point& pt : pts) {
    const double cost = pt.feasible ? pt.cost : kInf;
    if (cost > prev) return false;
    prev = cost;
  }
  return true;
}

void PrintPoints(const char* name, const char* unit,
                 const std::vector<Point>& pts) {
  for (const Point& pt : pts) {
    std::printf("  %-18s %8.0f %-3s covered=%-8zu sets=%-5zu cost=%-12.3f "
                "%s (%.4fs)\n",
                name, pt.limit, unit, pt.covered, pt.sets, pt.cost,
                pt.interrupted ? "interrupted" : "complete   ", pt.seconds);
  }
}

void WritePoints(std::FILE* out, const char* key, const char* limit_key,
                 const std::vector<Point>& pts, bool trailing_comma) {
  std::fprintf(out, "    \"%s\": [\n", key);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Point& pt = pts[i];
    std::fprintf(out,
                 "      {\"%s\": %g, \"interrupted\": %s, \"feasible\": %s, "
                 "\"covered\": %zu, \"sets\": %zu, \"cost\": %.6f, "
                 "\"seconds\": %.6f}%s\n",
                 limit_key, pt.limit, pt.interrupted ? "true" : "false",
                 pt.feasible ? "true" : "false", pt.covered, pt.sets, pt.cost,
                 pt.seconds, i + 1 < pts.size() ? "," : "");
  }
  std::fprintf(out, "    ]%s\n", trailing_comma ? "," : "");
}

int RunAnytime(const char* out_path) {
  bench::PrintBanner("BENCH_anytime",
                     "anytime quality under deadlines and work budgets");

  const double deadlines_ms[] = {1.0, 5.0, 25.0, 100.0};

  // Greedy track: paper-scale sparse system, coverage high enough that the
  // unlimited run takes well past the shortest deadlines.
  const std::size_t n = bench::ScaledRows(700'000);
  Rng rng(2015);
  RandomSystemSpec spec;
  spec.num_elements = n;
  spec.num_sets = n / 2;
  spec.max_set_size = 16;
  // No universe set: a single pick covering everything would collapse the
  // anytime curve to one point. Small sets force thousands of picks.
  spec.ensure_universe = false;
  SetSystem greedy_system = RandomSetSystem(spec, rng).value();

  CwscOptions greedy_base;
  greedy_base.k = n;  // effectively unbounded picks
  greedy_base.coverage_fraction = 0.9;

  RunContext unlimited_ctx;
  const Point greedy_full =
      RunGreedyPoint(greedy_system, greedy_base, unlimited_ctx);
  SCWSC_CHECK(!greedy_full.interrupted, "unlimited greedy run tripped");

  std::vector<Point> greedy_deadline;
  for (const double ms : deadlines_ms) {
    RunContext ctx;
    ctx.SetDeadline(std::chrono::duration<double, std::milli>(ms));
    Point pt = RunGreedyPoint(greedy_system, greedy_base, ctx);
    pt.limit = ms;
    greedy_deadline.push_back(pt);
  }

  const std::uint64_t recount_budgets[] = {10'000, 100'000, 1'000'000,
                                           10'000'000};
  std::vector<Point> greedy_budget;
  for (const std::uint64_t budget : recount_budgets) {
    RunContext ctx;
    ctx.SetRecountBudget(budget);
    Point pt = RunGreedyPoint(greedy_system, greedy_base, ctx);
    pt.limit = static_cast<double>(budget);
    greedy_budget.push_back(pt);
  }

  // Exact track: small instance whose branch-and-bound search outlives the
  // deadlines; the greedy seed supplies the first incumbent.
  RandomSystemSpec exact_spec;
  exact_spec.num_elements = 400;
  exact_spec.num_sets = 64;
  exact_spec.max_set_size = 80;
  Rng exact_rng(7);
  SetSystem exact_system = RandomSetSystem(exact_spec, exact_rng).value();

  ExactOptions exact_base;
  exact_base.k = 8;
  exact_base.coverage_fraction = 0.9;

  std::vector<Point> exact_deadline;
  for (const double ms : deadlines_ms) {
    RunContext ctx;
    ctx.SetDeadline(std::chrono::duration<double, std::milli>(ms));
    Point pt = RunExactPoint(exact_system, exact_base, ctx);
    pt.limit = ms;
    exact_deadline.push_back(pt);
  }

  const std::uint64_t node_budgets[] = {100, 1'000, 10'000, 100'000};
  std::vector<Point> exact_budget;
  for (const std::uint64_t budget : node_budgets) {
    RunContext ctx;
    ctx.SetNodeBudget(budget);
    Point pt = RunExactPoint(exact_system, exact_base, ctx);
    pt.limit = static_cast<double>(budget);
    exact_budget.push_back(pt);
  }

  PrintPoints("greedy/deadline", "ms", greedy_deadline);
  PrintPoints("greedy/budget", "rc", greedy_budget);
  std::printf("  %-18s %8s     covered=%-8zu sets=%-5zu cost=%-12.3f "
              "complete    (%.4fs)\n",
              "greedy/unlimited", "-", greedy_full.covered, greedy_full.sets,
              greedy_full.cost, greedy_full.seconds);
  PrintPoints("exact/deadline", "ms", exact_deadline);
  PrintPoints("exact/budget", "nd", exact_budget);

  // The budget axes are deterministic: a violation is a solver bug.
  const bool budget_coverage_ok = CoverageNonDecreasing(greedy_budget);
  const bool budget_cost_ok = CostNonIncreasing(exact_budget);
  const bool deadline_coverage_ok = CoverageNonDecreasing(greedy_deadline);
  const bool deadline_cost_ok = CostNonIncreasing(exact_deadline);
  if (!budget_coverage_ok || !budget_cost_ok) {
    std::fprintf(stderr,
                 "FAIL: deterministic budget axis not monotone "
                 "(coverage_ok=%d cost_ok=%d)\n",
                 budget_coverage_ok, budget_cost_ok);
    return 1;
  }
  if (!deadline_coverage_ok || !deadline_cost_ok) {
    std::fprintf(stderr,
                 "warning: wall-clock deadline axis not monotone this run "
                 "(coverage_ok=%d cost_ok=%d)\n",
                 deadline_coverage_ok, deadline_cost_ok);
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"experiment\": \"BENCH_anytime\",\n"
               "  \"scale\": %g,\n"
               "  \"greedy\": {\n"
               "    \"elements\": %zu,\n"
               "    \"sets\": %zu,\n"
               "    \"unlimited\": {\"covered\": %zu, \"sets\": %zu, "
               "\"cost\": %.6f, \"seconds\": %.6f},\n",
               bench::ScaleFactor(), n, greedy_system.num_sets(),
               greedy_full.covered, greedy_full.sets, greedy_full.cost,
               greedy_full.seconds);
  WritePoints(out, "deadline_ms", "deadline_ms", greedy_deadline, true);
  WritePoints(out, "recount_budget", "budget", greedy_budget, true);
  std::fprintf(out,
               "    \"coverage_monotone_deadline\": %s,\n"
               "    \"coverage_monotone_budget\": %s\n"
               "  },\n"
               "  \"exact\": {\n"
               "    \"elements\": %zu,\n"
               "    \"sets\": %zu,\n",
               deadline_coverage_ok ? "true" : "false",
               budget_coverage_ok ? "true" : "false",
               static_cast<std::size_t>(exact_spec.num_elements),
               exact_system.num_sets());
  WritePoints(out, "deadline_ms", "deadline_ms", exact_deadline, true);
  WritePoints(out, "node_budget", "budget", exact_budget, true);
  std::fprintf(out,
               "    \"cost_monotone_deadline\": %s,\n"
               "    \"cost_monotone_budget\": %s\n"
               "  }\n"
               "}\n",
               deadline_cost_ok ? "true" : "false",
               budget_cost_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace scwsc

int main(int argc, char** argv) {
  const char* out_path = "BENCH_anytime.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  return scwsc::RunAnytime(out_path);
}
