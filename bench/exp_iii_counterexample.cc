// EXP-RW — §III: the budgeted-max-coverage greedy [11] has arbitrarily poor
// coverage on the constructed instance, even when allowed c·k sets, while
// the optimum (and CWSC) reach 100% with k sets.
//
// Elements {1..C·k}; c·k singletons of weight 1; k blocks of C elements of
// weight C+1. Budgeted greedy prefers the singletons (gain 1 > C/(C+1)).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/core/baselines.h"
#include "src/core/cwsc.h"
#include "src/core/instances.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-RW", "§III counterexample vs budgeted max coverage");
  std::printf("%6s %4s %4s %10s %18s %14s %14s\n", "C", "c", "k", "universe",
              "budgeted coverage", "CWSC coverage", "opt coverage");

  const std::size_t c = 3;
  const std::size_t k = 10;
  for (std::size_t C : {10u, 50u, 100u, 500u}) {
    CounterexampleSpec spec;
    spec.big_set_size = C;
    spec.small_set_multiplier = c;
    spec.k = k;
    auto system = MakeBudgetedCounterexample(spec);
    SCWSC_CHECK(system.ok(), "construction failed");

    const double opt_cost = double(k) * (double(C) + 1.0);
    BudgetedMaxCoverageOptions bmc;
    bmc.budget = opt_cost;
    bmc.max_sets = c * k;
    auto greedy = RunBudgetedMaxCoverage(*system, bmc);
    SCWSC_CHECK(greedy.ok(), "budgeted greedy failed");

    auto cwsc = RunCwsc(*system, {k, 1.0});
    SCWSC_CHECK(cwsc.ok(), "CWSC failed");

    std::printf("%6zu %4zu %4zu %10zu %12zu (%3.0f%%) %8zu (%3.0f%%) %14zu\n",
                C, c, k, system->num_elements(), greedy->covered,
                100.0 * double(greedy->covered) /
                    double(system->num_elements()),
                cwsc->covered,
                100.0 * double(cwsc->covered) / double(system->num_elements()),
                system->num_elements());
    PrintCsvRow("exp_iii",
                {std::to_string(C), std::to_string(greedy->covered),
                 std::to_string(cwsc->covered),
                 std::to_string(system->num_elements())});
  }
  std::printf(
      "\nThe budgeted greedy covers only c*k = %zu elements regardless of C;\n"
      "its coverage ratio vs the optimum decays as 1/C (arbitrarily poor).\n",
      c * k);
  return 0;
}
