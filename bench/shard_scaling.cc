// BENCH_shard — sharded-snapshot scaling gate.
//
// One explicit weighted set system ~10x past the paper's largest axis
// (n = 7M elements at scale 1.0 vs the paper's 700k-row ceiling), solved
// through the registry over snapshots built at shard counts {1, 2, 4, 8,
// 16}. The shard-1 snapshot IS the flat engine path; every other arm runs
// the per-shard benefit engines with merged CELF rounds.
//
// The workload is adversarial for the flat engine in exactly the way the
// sharded engine is designed to fix: a layer of "beacon" sets (short,
// cheap, high gain-density) tops the CELF heap but sits below CWSC's
// |MBen|*i >= rem qualification threshold, so every selection round pops,
// revalidates and re-parks all of them. The flat engine must walk each
// beacon's full element list every round (its global epoch moved); the
// sharded engine sees that the round's pick dirtied one or two shards and
// revalidates untouched beacons from per-shard caches in O(shards). The
// picks themselves come from a layer of "carrier" interval sets; a
// universe set (Definition 1) guarantees feasibility and is priced to
// never win a round.
//
// Gates (exit 1 on any failure), written to BENCH_shard.json:
//   g1 bit-identical solutions: every (solver, shard-count) arm returns
//      exactly the flat arm's picks, cost and coverage — sharding is an
//      execution plan, never a semantics change;
//   g2 speedup: at paper scale and beyond (SCWSC_BENCH_SCALE >= 1.0) the
//      8-shard cwsc solve is >= 2.5x faster than the flat solve. Below
//      paper scale the ratio is recorded but not enforced (small-n runs
//      are noise-dominated).
//
// The committed BENCH_shard.json comes from a scale-1.0 run; check.sh
// smokes g1 at scale 0.02.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/instance.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/core/set_system.h"
#include "src/core/shard.h"
#include "src/serve/json.h"

namespace scwsc {
namespace {

constexpr std::uint64_t kSeed = 1234;
constexpr std::size_t kPaperCeilingElements = 700000;  // paper's largest axis
constexpr std::size_t kCarriers = 400;
constexpr std::size_t kBeacons = 3000;
constexpr double kCarrierCost = 10.0;
constexpr double kBeaconCost = 0.4;
constexpr std::size_t kK = 600;
constexpr double kCoverage = 0.5;
constexpr double kSpeedupBar = 2.5;  // flat/8-shard, enforced at scale >= 1

/// Beacon + carrier interval system over {0, ..., n-1}. Carrier intervals
/// (n/350 elements, cost 10) are what greedy picks for most of the run;
/// beacon intervals (n/3500 elements, cost 0.4) have ~2.5x the carriers'
/// gain density so they head the CELF heap, but are too small to meet the
/// CWSC threshold until the tail of the run — they exist to be revalidated
/// every round. The universe set keeps Definition 1 satisfied at a price
/// (gain density 1) that loses to every live carrier.
SetSystem BuildSystem(std::size_t n) {
  Rng rng(kSeed);
  SetSystem system(n);

  std::vector<ElementId> universe(n);
  for (std::size_t e = 0; e < n; ++e) universe[e] = static_cast<ElementId>(e);
  auto added = system.AddSet(std::move(universe), static_cast<double>(n),
                             "universe");
  SCWSC_CHECK(added.ok(), "universe set rejected: %s",
              added.status().ToString().c_str());

  auto add_intervals = [&](std::size_t count, std::size_t len, double cost,
                           const char* prefix) {
    len = std::min(len, n);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t start =
          len < n ? static_cast<std::size_t>(rng.NextBounded(n - len)) : 0;
      std::vector<ElementId> elems(len);
      for (std::size_t j = 0; j < len; ++j) {
        elems[j] = static_cast<ElementId>(start + j);
      }
      auto id = system.AddSet(std::move(elems), cost,
                              prefix + std::to_string(i));
      SCWSC_CHECK(id.ok(), "%s set rejected: %s", prefix,
                  id.status().ToString().c_str());
    }
  };
  add_intervals(kCarriers, std::max<std::size_t>(n / 350, 64), kCarrierCost,
                "carrier");
  add_intervals(kBeacons, std::max<std::size_t>(n / 3500, 8), kBeaconCost,
                "beacon");
  return system;
}

/// What bit-identity means here: the exact pick sequence plus the audited
/// bookkeeping. total_cost compares with ==; both arms sum the same costs
/// in the same order, so even the floating-point dust must match.
struct Fingerprint {
  std::vector<SetId> sets;
  double total_cost = 0.0;
  std::size_t covered = 0;

  bool operator==(const Fingerprint& o) const {
    return sets == o.sets && total_cost == o.total_cost &&
           covered == o.covered;
  }
};

struct Arm {
  std::string solver;
  std::size_t requested_shards = 1;
  std::size_t effective_shards = 1;
  double seconds = 0.0;
  Fingerprint fingerprint;
  bool identical = true;  // vs the same solver's flat arm
};

Arm RunArm(const SetSystem& system, const std::string& solver,
           std::size_t shards, std::size_t reps) {
  ShardingOptions sharding;
  sharding.num_shards = shards;
  auto snapshot = api::InstanceSnapshot::FromSetSystem(system.Clone(),
                                                       sharding);
  SCWSC_CHECK(snapshot.ok(), "snapshot at %s shards failed: %s",
              std::to_string(shards).c_str(),
              snapshot.status().ToString().c_str());
  api::InstancePtr instance = *std::move(snapshot);

  Arm arm;
  arm.solver = solver;
  arm.requested_shards = shards;
  arm.effective_shards = instance->num_shards();
  const api::SolveRequest request =
      bench::MakeRequest(instance, kK, kCoverage);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const api::SolveResult result = bench::MustSolve(solver, request);
    SCWSC_CHECK(result.audit.bookkeeping_consistent,
                "%s audit failed at %s shards", solver.c_str(),
                std::to_string(shards).c_str());
    arm.seconds = rep == 0 ? result.seconds
                           : std::min(arm.seconds, result.seconds);
    arm.fingerprint =
        Fingerprint{result.solution.sets, result.total_cost, result.covered};
  }
  return arm;
}

serve::JsonValue ArmJson(const Arm& arm) {
  serve::JsonObject o;
  o["solver"] = arm.solver;
  o["requested_shards"] = arm.requested_shards;
  o["effective_shards"] = arm.effective_shards;
  o["seconds"] = arm.seconds;
  o["picks"] = arm.fingerprint.sets.size();
  o["total_cost"] = arm.fingerprint.total_cost;
  o["covered"] = arm.fingerprint.covered;
  o["identical_to_flat"] = arm.identical;
  return serve::JsonValue(std::move(o));
}

}  // namespace
}  // namespace scwsc

int main(int argc, char** argv) {
  using namespace scwsc;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_shard.json";

  bench::PrintBanner("shard_scaling",
                     "sharded vs flat benefit engines, merged CELF rounds");

  const std::size_t n = bench::ScaledRows(10 * kPaperCeilingElements);
  const bool paper_scale = bench::ScaleFactor() >= 1.0;
  std::printf("universe n=%zu (paper ceiling %zu), carriers=%zu beacons=%zu "
              "k=%zu coverage=%.2f\n",
              n, kPaperCeilingElements, kCarriers, kBeacons, kK, kCoverage);
  const SetSystem system = BuildSystem(n);

  // cwsc carries the speedup gate (2 reps, min); cmc and greedy-wsc ride
  // along at {1, 8} shards to prove the whole solver surface stays
  // bit-identical under sharding.
  const std::vector<std::size_t> cwsc_shards = {1, 2, 4, 8, 16};
  const std::vector<std::size_t> side_shards = {1, 8};

  std::vector<Arm> arms;
  for (std::size_t s : cwsc_shards) {
    arms.push_back(RunArm(system, "cwsc", s, 2));
  }
  for (const char* solver : {"cmc", "greedy-wsc"}) {
    for (std::size_t s : side_shards) {
      arms.push_back(RunArm(system, solver, s, 1));
    }
  }

  // g1: every arm bit-identical to its solver's flat arm.
  bool g1_identical = true;
  for (Arm& arm : arms) {
    for (const Arm& ref : arms) {
      if (ref.solver == arm.solver && ref.requested_shards == 1) {
        arm.identical = arm.fingerprint == ref.fingerprint;
        break;
      }
    }
    g1_identical = g1_identical && arm.identical;
  }

  // g2: cwsc flat/8-shard ratio, enforced at paper scale and beyond.
  double flat_seconds = 0.0, shard8_seconds = 0.0;
  serve::JsonObject speedups;
  for (const Arm& arm : arms) {
    if (arm.solver != "cwsc") continue;
    if (arm.requested_shards == 1) flat_seconds = arm.seconds;
  }
  for (const Arm& arm : arms) {
    if (arm.solver != "cwsc" || arm.requested_shards == 1) continue;
    const double ratio = arm.seconds > 0.0 ? flat_seconds / arm.seconds : 0.0;
    speedups["x" + std::to_string(arm.requested_shards)] = ratio;
    if (arm.requested_shards == 8) shard8_seconds = arm.seconds;
  }
  const double speedup8 =
      shard8_seconds > 0.0 ? flat_seconds / shard8_seconds : 0.0;
  const bool g2_speedup = !paper_scale || speedup8 >= kSpeedupBar;

  serve::JsonObject report;
  report["experiment"] = std::string("BENCH_shard");
  report["scale"] = bench::ScaleFactor();
  report["paper_scale"] = paper_scale;
  report["num_elements"] = n;
  report["paper_ceiling_elements"] = kPaperCeilingElements;
  report["num_sets"] = system.num_sets();
  serve::JsonObject arms_json;
  for (const Arm& arm : arms) {
    arms_json[arm.solver + "@" + std::to_string(arm.requested_shards)] =
        ArmJson(arm);
  }
  report["arms"] = serve::JsonValue(std::move(arms_json));
  report["cwsc_speedup_vs_flat"] = serve::JsonValue(std::move(speedups));
  report["speedup_bar_at_8_shards"] = kSpeedupBar;
  serve::JsonObject gates;
  gates["bit_identical_all_arms"] = g1_identical;
  gates["speedup_8_shards"] = g2_speedup;
  report["gates"] = serve::JsonValue(std::move(gates));
  const bool pass = g1_identical && g2_speedup;
  report["pass"] = pass;

  Status written =
      serve::WriteJsonFile(serve::JsonValue(std::move(report)), out_path);
  SCWSC_CHECK(written.ok(), "writing %s: %s", out_path.c_str(),
              written.ToString().c_str());

  for (const Arm& arm : arms) {
    bench::PrintCsvRow(
        "shard_scaling",
        {arm.solver, "shards=" + std::to_string(arm.requested_shards),
         "eff=" + std::to_string(arm.effective_shards),
         "secs=" + bench::Secs(arm.seconds),
         "picks=" + std::to_string(arm.fingerprint.sets.size()),
         "identical=" + std::string(arm.identical ? "1" : "0")});
  }
  std::printf("cwsc flat=%.3fs 8-shard=%.3fs speedup=%.2fx (bar %.1fx %s)\n",
              flat_seconds, shard8_seconds, speedup8, kSpeedupBar,
              paper_scale ? "enforced" : "recorded only below scale 1.0");
  std::printf("# report -> %s\n", out_path.c_str());

  if (!pass) {
    std::fprintf(stderr, "FAIL: shard gates: identical=%d speedup=%d\n",
                 g1_identical, g2_speedup);
    return 1;
  }
  return 0;
}
