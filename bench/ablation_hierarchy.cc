// EXP-ABL — hierarchies and ranges (the §II extension): what do richer
// lattices buy? On the synthetic trace with a protocol rollup hierarchy
// and a bucketized-duration range attribute, compare the flat and
// hierarchical CWSC at equal (k, ŝ): solution cost, solution size and
// patterns considered. The hierarchical candidate space strictly contains
// the flat one, so its *optimal* solutions are at least as good; the
// greedy, however, may commit to a coarse node early and pay for it on one
// target while winning clearly on another — both directions show up below,
// which is itself the interesting ablation result.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/hierarchy/bucketize.h"
#include "src/hierarchy/hcwsc.h"
#include "src/pattern/opt_cwsc.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-ABL-HIER",
              "flat vs hierarchical CWSC (rollups + duration ranges)");

  Table base = MakeTrace(ScaledRows(350'000));

  // Bucketize a derived duration attribute (log of the measure) so range
  // nodes become available, and roll protocols into families.
  std::vector<double> durations;
  for (RowId r = 0; r < base.num_rows(); ++r) {
    durations.push_back(base.measure(r));
  }
  auto bucketized = hierarchy::AppendBucketizedAttribute(
      base, durations, "duration_bucket", {.num_buckets = 8});
  SCWSC_CHECK(bucketized.ok(), "bucketize failed");
  const Table& table = bucketized->table;

  std::vector<std::pair<std::string, std::string>> edges;
  for (ValueId v = 0; v < table.domain_size(0); ++v) {
    const std::string& name = table.dictionary(0).Name(v);
    const bool interactive =
        name == "telnet" || name == "login" || name == "shell" ||
        name == "finger";
    edges.emplace_back(name, interactive ? "interactive" : "batch");
  }
  auto proto = hierarchy::AttributeHierarchy::Build(table.dictionary(0), edges);
  SCWSC_CHECK(proto.ok(), "hierarchy build failed");
  auto th = hierarchy::TableHierarchy::Build(
      table, {{0, std::move(*proto)},
              {bucketized->attribute_index, std::move(bucketized->hierarchy)}});
  SCWSC_CHECK(th.ok(), "table hierarchy failed");

  const pattern::CostFunction cost_fn(pattern::CostKind::kMax);
  std::printf("%6s %6s | %12s %6s %10s | %12s %6s %10s\n", "k", "s",
              "flat cost", "|S|", "considered", "hier cost", "|S|",
              "considered");

  for (std::size_t k : {5u, 10u}) {
    for (double s : {0.3, 0.5}) {
      pattern::PatternStats flat_stats;
      auto flat = pattern::RunOptimizedCwsc(table, cost_fn, {k, s},
                                            &flat_stats);
      SCWSC_CHECK(flat.ok(), "flat CWSC failed");

      pattern::PatternStats hier_stats;
      auto hier = hierarchy::RunHierarchicalCwsc(table, *th, cost_fn, {k, s},
                                                 &hier_stats);
      SCWSC_CHECK(hier.ok(), "hierarchical CWSC failed");

      std::printf("%6zu %6.1f | %12s %6zu %10zu | %12s %6zu %10zu\n", k, s,
                  FormatNumber(flat->total_cost, 5).c_str(),
                  flat->patterns.size(), flat_stats.patterns_considered,
                  FormatNumber(hier->total_cost, 5).c_str(),
                  hier->patterns.size(), hier_stats.patterns_considered);
      PrintCsvRow("ablation_hier",
                  {std::to_string(k), StrFormat("%.1f", s),
                   FormatNumber(flat->total_cost, 6),
                   std::to_string(flat->patterns.size()),
                   FormatNumber(hier->total_cost, 6),
                   std::to_string(hier->patterns.size())});
    }
  }
  return 0;
}
