// EXP-LP — §III's relax-and-round approach, made concrete.
//
// The paper's related-work discussion notes that solving the natural LP
// relaxation and rounding "may violate the cardinality constraint by more
// than a (1 + ε) factor unless k is large". This bench solves the exact
// relaxation (own two-phase simplex, src/lp) on small trace samples and
// reports, per k: the certified LP lower bound, CWSC's cost (and its
// certified gap), the rounded solution's cost, and the cardinality
// violation — which shrinks as k grows, exactly the §III caveat.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-LP", "§III: LP relaxation, rounding, and the k-violation");
  std::printf("%4s %12s %12s %10s %12s %12s %10s\n", "k", "LP bound",
              "CWSC", "CWSC/LP", "rounded", "|S|", "violation");

  // Small sample: the dense simplex is O((m+n)^3)-ish.
  Table big = MakeTrace(ScaledRows(700'000));
  Rng rng(303);
  Table sampled = big.Sample(60, rng);
  auto projected = sampled.ProjectAttributes({0, 3, 4});
  SCWSC_CHECK(projected.ok(), "projection failed");
  const api::InstancePtr instance = MakeSnapshot(*std::move(projected));

  const double fraction = 0.5;
  for (std::size_t k : {2u, 4u, 8u, 16u, 32u}) {
    api::SolveResult greedy =
        MustSolve("cwsc", MakeRequest(instance, k, fraction));
    api::SolveResult rounded = MustSolve(
        "lp-rounding", MakeRequest(instance, k, fraction, {"trials=64"}));

    const double lp_bound = rounded.counters.lp_lower_bound;
    const double gap = lp_bound > 0 ? greedy.total_cost / lp_bound : 1.0;
    std::printf("%4zu %12s %12s %9.2fx %12s %12zu %10zu\n", k,
                FormatNumber(lp_bound, 5).c_str(),
                FormatNumber(greedy.total_cost, 5).c_str(), gap,
                FormatNumber(rounded.total_cost, 5).c_str(),
                rounded.labels.size(),
                rounded.counters.cardinality_violation);
    PrintCsvRow("exp_lp",
                {std::to_string(k), FormatNumber(lp_bound, 6),
                 FormatNumber(greedy.total_cost, 6),
                 FormatNumber(rounded.total_cost, 6),
                 std::to_string(rounded.labels.size()),
                 std::to_string(rounded.counters.cardinality_violation)});
  }
  std::printf(
      "\nThe LP bound certifies CWSC's optimality gap without exhaustive\n"
      "search; the rounded solution's cardinality violation illustrates\n"
      "§III's caveat about the relax-and-round approach.\n");
  return 0;
}
