// BENCH_serve — SolveScheduler throughput vs a serial registry loop.
//
// One synthetic trace, one shared snapshot, and a mixed workload of
// deterministic jobs (several solvers × several (k, ŝ) points, each repeated
// so the result cache has something to do). Three arms over the identical
// job list:
//
//  * serial: a plain loop of SolverRegistry::Solve calls — the baseline a
//    frontend without the serve layer would run.
//  * scheduler-cold: a fresh SolveScheduler on a hardware-sized ThreadPool;
//    every distinct job misses the result cache, so the speedup here is
//    parallelism alone.
//  * scheduler-warm: the same scheduler again after its caches are
//    populated; repeats and re-runs are served from the result cache. The
//    acceptance bar (>= 3x jobs/sec over serial) applies to this arm. The
//    flight recorder (obs/recorder.h) is on — its default state — so this
//    arm carries the always-on telemetry cost.
//  * scheduler-warm-norec: the warm pass repeated with the flight recorder
//    disabled, isolating the recorder's overhead. Both warm configurations
//    run several interleaved repetitions and the ratio compares best-of-N
//    passes. The recorder bar (warm-with-recorder within 3% of
//    warm-without) arms at SCWSC_BENCH_SCALE >= 1.0; the ratio is reported
//    at every scale.
//
// Every job is deadline-free and therefore deterministic, so the bench also
// asserts that scheduler outcomes are identical (selection, cost, coverage)
// to the serial loop's — exit 1 on any divergence or on a missed speedup
// bar. Results go to BENCH_serve.json (or argv[1]): jobs/sec per arm,
// speedups, result/snapshot cache hit counters and p50/p99 job latency.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/obs/recorder.h"
#include "src/serve/batch.h"
#include "src/serve/cache.h"
#include "src/serve/scheduler.h"

namespace scwsc {
namespace {

struct Combo {
  std::string solver;
  std::size_t k = 0;
  double coverage = 0.0;
};

constexpr std::size_t kRepeats = 10;  // jobs per combo, feeds the cache

std::vector<Combo> Workload() {
  return {
      {"cwsc", 6, 0.5},
      {"cwsc", 8, 0.7},
      {"cmc", 6, 0.5},
      {"opt-cwsc", 6, 0.5},
      {"opt-cmc", 6, 0.6},
      {"greedy-max-coverage", 8, 0.8},
  };
}

/// The facts two runs of a deterministic job must agree on.
struct Fingerprint {
  std::vector<std::string> labels;
  double total_cost = 0.0;
  std::size_t covered = 0;

  bool operator==(const Fingerprint& other) const {
    return labels == other.labels && total_cost == other.total_cost &&
           covered == other.covered;
  }
};

Fingerprint FingerprintOf(const api::SolveResult& result) {
  return {result.labels, result.total_cost, result.covered};
}

serve::SolveJob MakeJob(const api::InstancePtr& instance, const Combo& combo,
                        std::size_t repeat) {
  serve::SolveJob job;
  job.solver = combo.solver;
  auto request = api::SolveRequest::Builder(instance)
                     .WithK(combo.k)
                     .WithCoverage(combo.coverage)
                     .WithLabel(combo.solver + "-rep" + std::to_string(repeat))
                     .Build();
  SCWSC_CHECK(request.ok(), "bad bench request: %s",
              request.status().ToString().c_str());
  job.request = *std::move(request);
  return job;
}

struct ArmStats {
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  std::vector<double> latencies;  // per-job seconds, sorted
  std::vector<Fingerprint> fingerprints;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// The serial baseline: one registry call per job, in order.
ArmStats RunSerial(const api::InstancePtr& instance,
                   const std::vector<Combo>& combos) {
  ArmStats stats;
  Stopwatch wall;
  for (const Combo& combo : combos) {
    for (std::size_t rep = 0; rep < kRepeats; ++rep) {
      serve::SolveJob job = MakeJob(instance, combo, rep);
      Stopwatch timer;
      auto result =
          api::SolverRegistry::Global().Solve(job.solver, job.request);
      SCWSC_CHECK(result.ok(), "serial %s failed: %s", combo.solver.c_str(),
                  result.status().ToString().c_str());
      stats.latencies.push_back(timer.ElapsedSeconds());
      stats.fingerprints.push_back(FingerprintOf(*result));
    }
  }
  stats.wall_seconds = wall.ElapsedSeconds();
  stats.jobs_per_second =
      static_cast<double>(stats.fingerprints.size()) / stats.wall_seconds;
  std::sort(stats.latencies.begin(), stats.latencies.end());
  return stats;
}

/// One timed pass of the full job list through `scheduler`.
ArmStats RunScheduled(const api::InstancePtr& instance,
                      const std::vector<Combo>& combos,
                      serve::SolveScheduler& scheduler) {
  std::vector<std::future<serve::JobOutcome>> futures;
  ArmStats stats;
  Stopwatch wall;
  for (const Combo& combo : combos) {
    for (std::size_t rep = 0; rep < kRepeats; ++rep) {
      auto future = scheduler.Enqueue(MakeJob(instance, combo, rep));
      SCWSC_CHECK(future.ok(), "enqueue rejected: %s",
                  future.status().ToString().c_str());
      futures.push_back(std::move(*future));
    }
  }
  for (auto& future : futures) {
    serve::JobOutcome outcome = future.get();
    SCWSC_CHECK(outcome.result.ok(), "scheduled job %s failed: %s",
                outcome.label.c_str(),
                outcome.result.status().ToString().c_str());
    stats.latencies.push_back(outcome.queue_seconds + outcome.run_seconds);
    stats.fingerprints.push_back(FingerprintOf(*outcome.result));
  }
  stats.wall_seconds = wall.ElapsedSeconds();
  stats.jobs_per_second =
      static_cast<double>(stats.fingerprints.size()) / stats.wall_seconds;
  std::sort(stats.latencies.begin(), stats.latencies.end());
  return stats;
}

/// Scheduler arms enqueue combos in the same (combo, repeat) order as the
/// serial loop and futures are collected in enqueue order, so fingerprints
/// align index-by-index.
std::size_t CountDivergences(const ArmStats& serial, const ArmStats& arm) {
  std::size_t divergences = 0;
  for (std::size_t i = 0; i < serial.fingerprints.size(); ++i) {
    if (!(serial.fingerprints[i] == arm.fingerprints[i])) ++divergences;
  }
  return divergences;
}

serve::JsonValue ArmJson(const ArmStats& stats) {
  serve::JsonObject arm;
  arm["jobs"] = stats.fingerprints.size();
  arm["wall_seconds"] = stats.wall_seconds;
  arm["jobs_per_second"] = stats.jobs_per_second;
  arm["p50_latency_seconds"] = Percentile(stats.latencies, 0.50);
  arm["p99_latency_seconds"] = Percentile(stats.latencies, 0.99);
  return serve::JsonValue(std::move(arm));
}

}  // namespace
}  // namespace scwsc

int main(int argc, char** argv) {
  using namespace scwsc;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";

  bench::PrintBanner("serve_throughput",
                     "serve layer: scheduler vs serial registry loop");

  const std::size_t rows = bench::ScaledRows(50000);
  api::InstancePtr instance = bench::MakeTraceSnapshot(50000);
  const std::vector<Combo> combos = Workload();

  // Force the lazy pattern enumeration before timing so every arm measures
  // solving, not a first-touch build raced by whichever arm goes first.
  {
    serve::SolveJob warm = MakeJob(instance, combos.front(), 0);
    auto primed = api::SolverRegistry::Global().Solve(warm.solver,
                                                      warm.request);
    SCWSC_CHECK(primed.ok(), "priming solve failed: %s",
                primed.status().ToString().c_str());
  }

  const ArmStats serial = RunSerial(instance, combos);

  ThreadPool pool(0);  // hardware concurrency
  serve::SolveScheduler scheduler(&pool);
  // The batch frontend's snapshot path: key the instance by content so the
  // snapshot counters in the report are live.
  const std::uint64_t hash = serve::ContentHash(*instance);
  if (scheduler.snapshot_cache().Lookup(hash) == nullptr) {
    scheduler.snapshot_cache().Insert(hash, instance);
  }

  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  SCWSC_CHECK(recorder.enabled(), "flight recorder should default to on");
  const ArmStats cold = RunScheduled(instance, combos, scheduler);
  const ArmStats warm = RunScheduled(instance, combos, scheduler);
  // The same warm pass with the recorder off, isolating the recorder's own
  // cost on the cache-served fast path. A single warm pass finishes in a
  // few hundred microseconds — far too short to resolve a 3% ratio — so
  // both configurations run several interleaved repetitions and the ratio
  // compares each arm's best pass (the classic minimum-of-N noise filter;
  // a constant per-event cost survives the minimum, scheduling jitter does
  // not).
  recorder.set_enabled(false);
  ArmStats warm_norec = RunScheduled(instance, combos, scheduler);
  recorder.set_enabled(true);
  double best_rec_jps = warm.jobs_per_second;
  double best_norec_jps = warm_norec.jobs_per_second;
  constexpr int kRecorderReps = 9;
  for (int rep = 0; rep < kRecorderReps; ++rep) {
    const ArmStats with_rec = RunScheduled(instance, combos, scheduler);
    best_rec_jps = std::max(best_rec_jps, with_rec.jobs_per_second);
    recorder.set_enabled(false);
    const ArmStats without = RunScheduled(instance, combos, scheduler);
    recorder.set_enabled(true);
    best_norec_jps = std::max(best_norec_jps, without.jobs_per_second);
  }

  const double cold_speedup = cold.jobs_per_second / serial.jobs_per_second;
  const double warm_speedup = warm.jobs_per_second / serial.jobs_per_second;
  const double recorder_ratio =
      best_norec_jps > 0.0 ? best_rec_jps / best_norec_jps : 1.0;
  const std::size_t divergences = CountDivergences(serial, cold) +
                                  CountDivergences(serial, warm) +
                                  CountDivergences(serial, warm_norec);

  obs::MetricRegistry& metrics = scheduler.metrics();
  const std::uint64_t result_hits =
      metrics.CounterValue("serve.result_cache.hits");
  const std::uint64_t result_misses =
      metrics.CounterValue("serve.result_cache.misses");

  serve::JsonObject report;
  report["rows"] = rows;
  report["threads"] = static_cast<std::size_t>(pool.size());
  report["serial"] = ArmJson(serial);
  report["scheduler_cold"] = ArmJson(cold);
  report["scheduler_warm"] = ArmJson(warm);
  report["scheduler_warm_norecorder"] = ArmJson(warm_norec);
  report["cold_speedup"] = cold_speedup;
  report["warm_speedup"] = warm_speedup;
  report["best_warm_recorder_jps"] = best_rec_jps;
  report["best_warm_norecorder_jps"] = best_norec_jps;
  report["recorder_throughput_ratio"] = recorder_ratio;
  report["recorder_events"] = recorder.recorded();
  report["recorder_dropped"] = recorder.dropped();
  report["result_cache_hits"] = result_hits;
  report["result_cache_misses"] = result_misses;
  report["snapshot_cache_hits"] =
      metrics.CounterValue("serve.snapshot_cache.hits");
  report["snapshot_cache_misses"] =
      metrics.CounterValue("serve.snapshot_cache.misses");
  report["solutions_identical"] = divergences == 0;
  Status written =
      serve::WriteJsonFile(serve::JsonValue(std::move(report)), out_path);
  SCWSC_CHECK(written.ok(), "writing %s: %s", out_path.c_str(),
              written.ToString().c_str());

  bench::PrintCsvRow(
      "serve_throughput",
      {"serial_jps=" + std::to_string(serial.jobs_per_second),
       "cold_jps=" + std::to_string(cold.jobs_per_second),
       "warm_jps=" + std::to_string(warm.jobs_per_second),
       "warm_speedup=" + std::to_string(warm_speedup),
       "recorder_ratio=" + std::to_string(recorder_ratio),
       "result_cache_hits=" + std::to_string(result_hits)});
  std::printf("# report -> %s\n", out_path.c_str());

  if (divergences > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu scheduled jobs diverged from the serial loop\n",
                 divergences);
    return 1;
  }
  if (warm_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: warm scheduler speedup %.2fx is below the 3x bar\n",
                 warm_speedup);
    return 1;
  }
  // Short smoke runs (scale < 1) report the ratio without gating: at a few
  // hundred cache-served jobs the measurement is dominated by scheduling
  // jitter, not the recorder.
  if (bench::ScaleFactor() >= 1.0 && recorder_ratio < 0.97) {
    std::fprintf(stderr,
                 "FAIL: flight recorder costs %.1f%% warm throughput "
                 "(ratio %.3f, bar 0.97)\n",
                 100.0 * (1.0 - recorder_ratio), recorder_ratio);
    return 1;
  }
  std::printf(
      "# OK: warm %.1fx, cold %.1fx over serial; recorder ratio %.3f; "
      "solutions match\n",
      warm_speedup, cold_speedup, recorder_ratio);
  return 0;
}
