// EXP-D1 — §VI-D: comparison to the optimal solution on small samples.
//
// Paper finding: "CMC found an optimal solution when we used small values
// of b and ε. CWSC almost always found an optimal solution" (one exception
// where optimal = 8, CWSC = 9). We draw several small samples, solve
// exactly with branch-and-bound, and report greedy/optimal cost ratios.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-D1", "§VI-D: greedy vs exact optimum on small samples");
  std::printf("%8s %4s %6s %12s %12s %12s %10s %10s\n", "sample", "k", "s",
              "optimal", "CWSC", "CMC", "CWSC/opt", "CMC/opt");

  // Small samples need small active domains for the exact search to close;
  // project the trace to 3 attributes as §VI-D's "small samples" regime.
  Table big = MakeTrace(ScaledRows(700'000));
  Rng rng(607);

  int sample_id = 0;
  std::size_t cwsc_optimal = 0, cmc_optimal = 0, total = 0;
  for (std::size_t sample_rows : {40u, 60u, 80u}) {
    for (double s : {0.3, 0.5}) {
      Table sampled = big.Sample(sample_rows, rng);
      auto projected = sampled.ProjectAttributes({0, 3, 4});
      SCWSC_CHECK(projected.ok(), "projection failed");
      const api::InstancePtr instance = MakeSnapshot(*std::move(projected));

      const std::size_t k = 5;
      api::SolveResult optimal =
          MustSolve("exact", MakeRequest(instance, k, s));
      api::SolveResult cwsc = MustSolve("cwsc", MakeRequest(instance, k, s));
      // Small b/eps per §VI-D; strict so every arm hits the same target.
      api::SolveResult cmc = MustSolve(
          "cmc",
          MakeRequest(instance, k, s, {"b=0.25", "epsilon=0", "strict=true"}));

      const double opt_cost = optimal.total_cost;
      const double rc = cwsc.total_cost / opt_cost;
      const double rm = cmc.total_cost / opt_cost;
      ++total;
      if (rc <= 1.0 + 1e-9) ++cwsc_optimal;
      if (rm <= 1.0 + 1e-9) ++cmc_optimal;
      std::printf("%8d %4zu %6.1f %12s %12s %12s %9.2fx %9.2fx\n",
                  ++sample_id, k, s, FormatNumber(opt_cost, 6).c_str(),
                  FormatNumber(cwsc.total_cost, 6).c_str(),
                  FormatNumber(cmc.total_cost, 6).c_str(), rc, rm);
      PrintCsvRow("exp_vi_d",
                  {std::to_string(sample_id), StrFormat("%.1f", s),
                   FormatNumber(opt_cost, 6), FormatNumber(cwsc.total_cost, 6),
                   FormatNumber(cmc.total_cost, 6)});
    }
  }
  std::printf("\nCWSC optimal in %zu/%zu samples; CMC optimal in %zu/%zu\n",
              cwsc_optimal, total, cmc_optimal, total);
  return 0;
}
