// EXP-T6 — Table VI: number of patterns required by standard (partial)
// weighted set cover to reach coverage ŝ ∈ {0.5 ... 0.9}.
//
// Expected shape: far more than the k ≈ 10 the applications can absorb,
// growing steeply with the coverage fraction — the paper's motivation for
// the explicit size constraint.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-T6",
              "Table VI: patterns used by plain weighted set cover");

    const api::InstancePtr instance = MakeTraceSnapshot(700'000);

  std::printf("%-20s", "coverage fraction");
  for (double s : {0.5, 0.6, 0.7, 0.8, 0.9}) std::printf(" %8.1f", s);
  std::printf("\n%-20s", "number of patterns");
  std::vector<std::string> csv;
  for (double s : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    // greedy-wsc has no size constraint: it keeps picking sets until the
    // coverage target is met — exactly what Table VI measures.
    api::SolveResult r = MustSolve("greedy-wsc", MakeRequest(instance, 0, s));
    std::printf(" %8zu", r.labels.size());
    csv.push_back(std::to_string(r.labels.size()));
  }
  std::printf("\n");
  PrintCsvRow("table6", csv);
  return 0;
}
