// EXP-T6 — Table VI: number of patterns required by standard (partial)
// weighted set cover to reach coverage ŝ ∈ {0.5 ... 0.9}.
//
// Expected shape: far more than the k ≈ 10 the applications can absorb,
// growing steeply with the coverage fraction — the paper's motivation for
// the explicit size constraint.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/baselines.h"
#include "src/pattern/pattern_system.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-T6",
              "Table VI: patterns used by plain weighted set cover");

  const std::size_t rows = ScaledRows(700'000);
  Table base = MakeTrace(rows);
  auto system = pattern::PatternSystem::Build(
      base, pattern::CostFunction(pattern::CostKind::kMax));
  SCWSC_CHECK(system.ok(), "enumeration failed");

  std::printf("%-20s", "coverage fraction");
  for (double s : {0.5, 0.6, 0.7, 0.8, 0.9}) std::printf(" %8.1f", s);
  std::printf("\n%-20s", "number of patterns");
  std::vector<std::string> csv;
  for (double s : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    GreedyWscOptions opts;
    opts.coverage_fraction = s;
    auto solution = RunGreedyWeightedSetCover(system->set_system(), opts);
    SCWSC_CHECK(solution.ok(), "greedy WSC failed");
    std::printf(" %8zu", solution->sets.size());
    csv.push_back(std::to_string(solution->sets.size()));
  }
  std::printf("\n");
  PrintCsvRow("table6", csv);
  return 0;
}
