// EXP-ABL — engine ablation: literal Fig. 1/2 pseudocode vs this library's
// tuned generic engines (inverted-index marginal maintenance + lazy-greedy
// heaps). Both produce identical selections (see tests/literal_test.cc);
// the tuned engines exist so that the *generic* path is usable at scale,
// independent of the §V-C pattern-lattice optimizations.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/literal.h"
#include "src/pattern/pattern_system.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-ABL-ENGINE",
              "literal pseudocode vs tuned generic engines (same outputs)");
  std::printf("%10s %14s %14s %14s %14s\n", "tuples", "CWSC-lit(s)",
              "CWSC-tuned(s)", "CMC-lit(s)", "CMC-tuned(s)");

  const std::size_t max_rows = ScaledRows(350'000);
  for (std::size_t rows : {max_rows / 4, max_rows / 2, max_rows}) {
    Table table = MakeTrace(rows);
    auto system = pattern::PatternSystem::Build(
        table, pattern::CostFunction(pattern::CostKind::kMax));
    SCWSC_CHECK(system.ok(), "enumeration failed");

    CwscOptions cwsc_opts{10, 0.3};
    CmcOptions cmc_opts;
    cmc_opts.k = 10;
    cmc_opts.coverage_fraction = 0.3;

    Stopwatch sw;
    auto lit_cwsc = RunCwscLiteral(system->set_system(), cwsc_opts);
    const double t_lit_cwsc = sw.ElapsedSeconds();
    SCWSC_CHECK(lit_cwsc.ok(), "literal CWSC failed");

    sw.Reset();
    auto tuned_cwsc = RunCwsc(system->set_system(), cwsc_opts);
    const double t_tuned_cwsc = sw.ElapsedSeconds();
    SCWSC_CHECK(tuned_cwsc.ok(), "tuned CWSC failed");
    SCWSC_CHECK(lit_cwsc->sets == tuned_cwsc->sets,
                "engines disagree on CWSC");

    sw.Reset();
    auto lit_cmc = RunCmcLiteral(system->set_system(), cmc_opts);
    const double t_lit_cmc = sw.ElapsedSeconds();
    SCWSC_CHECK(lit_cmc.ok(), "literal CMC failed");

    sw.Reset();
    auto tuned_cmc = RunCmc(system->set_system(), cmc_opts);
    const double t_tuned_cmc = sw.ElapsedSeconds();
    SCWSC_CHECK(tuned_cmc.ok(), "tuned CMC failed");
    SCWSC_CHECK(lit_cmc->solution.sets == tuned_cmc->solution.sets,
                "engines disagree on CMC");

    std::printf("%10zu %14s %14s %14s %14s\n", rows, Secs(t_lit_cwsc).c_str(),
                Secs(t_tuned_cwsc).c_str(), Secs(t_lit_cmc).c_str(),
                Secs(t_tuned_cmc).c_str());
    PrintCsvRow("ablation_engine",
                {std::to_string(rows), Secs(t_lit_cwsc), Secs(t_tuned_cwsc),
                 Secs(t_lit_cmc), Secs(t_tuned_cmc)});
  }
  return 0;
}
