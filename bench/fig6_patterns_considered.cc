// EXP-F6 — Figure 6: number of patterns considered vs data size.
//
// Same sweep as Fig. 5; instead of wall-clock, report how many patterns
// each variant computed a (marginal) benefit / cost for. Unoptimized
// algorithms consider every enumerated pattern (once per budget round for
// CMC — the paper: "for CMC, the number of patterns considered is the sum
// of the patterns considered for each value of B"); optimized algorithms
// consider only the lattice frontier.

#include <cstdio>

#include "bench/fig_common.h"
#include "src/common/rng.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-F6", "Fig. 6: patterns considered vs number of tuples");
  std::printf("%10s %14s %14s %14s %14s\n", "tuples", "CWSC", "optCWSC",
              "CMC", "optCMC");

  const std::size_t max_rows = ScaledRows(700'000);
  Table base = MakeTrace(max_rows);
  Rng rng(2015);

  for (int step = 1; step <= 7; ++step) {
    const std::size_t rows = max_rows * static_cast<std::size_t>(step) / 7;
    Table sample = base.Sample(rows, rng);
    const std::size_t sampled = sample.num_rows();
    api::InstancePtr instance = MakeSnapshot(std::move(sample));
    QuadResult q = RunQuad(instance, 10, 0.3, 1.0, 1.0,
                           TimeEnumeration(instance));
    std::printf("%10zu %14zu %14zu %14zu %14zu\n", sampled,
                q.cwsc_considered, q.opt_cwsc_considered, q.cmc_considered,
                q.opt_cmc_considered);
    PrintCsvRow("fig6", {std::to_string(sampled),
                         std::to_string(q.cwsc_considered),
                         std::to_string(q.opt_cwsc_considered),
                         std::to_string(q.cmc_considered),
                         std::to_string(q.opt_cmc_considered)});
  }
  return 0;
}
