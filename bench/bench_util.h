// Shared infrastructure for the experiment harness.
//
// Every bench binary regenerates one table or figure of the paper's §VI.
// Row counts follow the paper's axes scaled by the SCWSC_BENCH_SCALE
// environment variable (default chosen so the full suite completes in a few
// minutes on a laptop); shapes — who wins, by what factor, where crossovers
// fall — are scale-stable, which is what EXPERIMENTS.md records.

#ifndef SCWSC_BENCH_BENCH_UTIL_H_
#define SCWSC_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/api/instance.h"
#include "src/api/registry.h"
#include "src/common/stopwatch.h"
#include "src/gen/lbl_synth.h"
#include "src/hierarchy/hierarchy.h"
#include "src/table/table.h"

namespace scwsc {
namespace bench {

/// SCWSC_BENCH_SCALE (float, default 0.1): multiplies every paper row-count
/// axis. 1.0 reproduces the paper's 700k-row ceiling.
double ScaleFactor();

/// paper_rows * ScaleFactor(), at least 1000.
std::size_t ScaledRows(std::size_t paper_rows);

/// The base synthetic LBL-like trace used across benches (deterministic).
Table MakeTrace(std::size_t rows, std::uint64_t seed = 42);

/// One shared instance snapshot over a patterned table (aborts on failure —
/// bench inputs are trusted). Every solver arm of a bench point shares this
/// one snapshot instead of re-enumerating per arm. `sharding` stamps an
/// element-range shard plan into the snapshot (default: flat).
api::InstancePtr MakeSnapshot(
    Table table, pattern::CostKind kind = pattern::CostKind::kMax,
    std::optional<hierarchy::TableHierarchy> hierarchy = std::nullopt,
    ShardingOptions sharding = {});

/// The common bench opener in one call: deterministic synthetic trace of
/// ScaledRows(paper_rows) rows wrapped in a snapshot. Deduplicates the
/// MakeSnapshot(MakeTrace(ScaledRows(N))) boilerplate of the fig/table
/// benches.
api::InstancePtr MakeTraceSnapshot(
    std::size_t paper_rows, pattern::CostKind kind = pattern::CostKind::kMax,
    ShardingOptions sharding = {});

/// A SolveRequest over a shared snapshot with "key=value" options items.
api::SolveRequest MakeRequest(api::InstancePtr instance, std::size_t k,
                              double fraction,
                              const std::vector<std::string>& options = {});

/// Registry dispatch that aborts on any failure (benches never expect one).
api::SolveResult MustSolve(const std::string& solver,
                           const api::SolveRequest& request);

/// Prints the experiment banner: id, paper artifact, scale note.
void PrintBanner(const std::string& experiment_id,
                 const std::string& paper_artifact);

/// Prints a row of "name=value" pairs in a stable aligned format followed
/// by a machine-greppable CSV line ("#csv,<exp>,<v1>,<v2>,...").
void PrintCsvRow(const std::string& experiment_id,
                 const std::vector<std::string>& values);

/// Formats seconds with 3 decimals.
std::string Secs(double seconds);

}  // namespace bench
}  // namespace scwsc

#endif  // SCWSC_BENCH_BENCH_UTIL_H_
