// EXP-T4 — Table IV: solution quality (total cost) of CWSC vs CMC for
// b ∈ {1/2, 1, 2} and ε ∈ {1, 2}, k = 10, ŝ ∈ {0.3, 0.4, 0.5, 0.6}.
//
// Expected shape: CWSC's cost is no greater than CMC's in every column;
// increasing b tends to increase CMC's cost (coarser budget guesses).
// CMC runs with strict coverage (relax_coverage = false) so every cell
// reaches the same coverage target and costs are comparable.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/strings.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-T4", "Table IV: solution cost, CWSC vs CMC(b, eps)");

    const api::InstancePtr instance = MakeTraceSnapshot(700'000);
  const std::vector<double> fractions = {0.3, 0.4, 0.5, 0.6};

  std::printf("%-26s", "Algorithm");
  for (double s : fractions) std::printf(" s=%-10.1f", s);
  std::printf("\n");

  {
    std::printf("%-26s", "CWSC");
    std::vector<std::string> csv = {"CWSC"};
    for (double s : fractions) {
      api::SolveResult r = MustSolve("opt-cwsc", MakeRequest(instance, 10, s));
      std::printf(" %-12s", FormatNumber(r.total_cost, 4).c_str());
      csv.push_back(FormatNumber(r.total_cost, 6));
    }
    std::printf("\n");
    PrintCsvRow("table4", csv);
  }

  for (double b : {0.5, 1.0, 2.0}) {
    for (double eps : {1.0, 2.0}) {
      const std::string name = StrFormat("CMC (b=%g, eps=%g)", b, eps);
      std::printf("%-26s", name.c_str());
      std::vector<std::string> csv = {name};
      for (double s : fractions) {
        api::SolveResult r = MustSolve(
            "opt-cmc",
            MakeRequest(instance, 10, s,
                        {StrFormat("b=%g", b), StrFormat("epsilon=%g", eps),
                         "strict=true"}));
        std::printf(" %-12s", FormatNumber(r.total_cost, 4).c_str());
        csv.push_back(FormatNumber(r.total_cost, 6));
      }
      std::printf("\n");
      PrintCsvRow("table4", csv);
    }
  }
  return 0;
}
