// EXP-MICRO — google-benchmark micro-benchmarks of the core greedy engine:
// marginal-benefit maintenance, lazy selection, coverage-target math and
// whole-solver throughput on random set systems.

#include <benchmark/benchmark.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/core/baselines.h"
#include "src/core/cwsc.h"
#include "src/core/greedy_state.h"
#include "src/core/instances.h"

namespace scwsc {
namespace {

SetSystem MakeRandom(std::size_t elements, std::size_t sets,
                     std::size_t max_size) {
  Rng rng(7);
  RandomSystemSpec spec;
  spec.num_elements = elements;
  spec.num_sets = sets;
  spec.max_set_size = max_size;
  auto system = RandomSetSystem(spec, rng);
  return std::move(system).value();
}

void BM_CoverStateSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SetSystem system = MakeRandom(n, n / 2, 16);
  for (auto _ : state) {
    state.PauseTiming();
    CoverState cover(system);
    state.ResumeTiming();
    for (SetId id = 0; id < system.num_sets(); id += 7) {
      benchmark::DoNotOptimize(cover.Select(id));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(system.num_sets() / 7));
}
BENCHMARK(BM_CoverStateSelect)->Arg(1000)->Arg(10'000)->Arg(100'000);

void BM_LazySelectorDrain(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<std::size_t> counts(m);
  for (auto& c : counts) c = 1 + rng.NextBounded(1000);
  for (auto _ : state) {
    LazySelector selector;
    for (SetId id = 0; id < m; ++id) {
      selector.Push(MakeBenefitKey(counts[id], 1.0, id));
    }
    std::size_t drained = 0;
    while (selector
               .Pop([&](SetId id) -> std::optional<SelectionKey> {
                 return MakeBenefitKey(counts[id], 1.0, id);
               })
               .has_value()) {
      ++drained;
    }
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_LazySelectorDrain)->Arg(1000)->Arg(100'000);

void BM_CoverageTarget(benchmark::State& state) {
  double f = 0.0;
  std::size_t total = 0;
  for (auto _ : state) {
    f += 1e-7;
    total += SetSystem::CoverageTarget(f - std::floor(f), 700'000);
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_CoverageTarget);

void BM_CwscEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SetSystem system = MakeRandom(n, n, 12);
  for (auto _ : state) {
    auto solution = RunCwsc(system, {10, 0.3});
    benchmark::DoNotOptimize(solution);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CwscEndToEnd)->Arg(1000)->Arg(10'000)->Arg(50'000);

void BM_GreedyWscEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SetSystem system = MakeRandom(n, n, 12);
  for (auto _ : state) {
    GreedyWscOptions opts;
    opts.coverage_fraction = 0.5;
    auto solution = RunGreedyWeightedSetCover(system, opts);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_GreedyWscEndToEnd)->Arg(1000)->Arg(10'000);

}  // namespace
}  // namespace scwsc

BENCHMARK_MAIN();
