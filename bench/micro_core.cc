// EXP-MICRO — google-benchmark micro-benchmarks of the core greedy engine:
// marginal-benefit maintenance, lazy selection, coverage-target math and
// whole-solver throughput on random set systems.
//
// Invoked with --engine-compare the binary instead times the seed engine
// (eager inverted-index decrements over element lists) against the default
// fast path (lazy CELF recounts over packed bitset rows) on a dense
// synthetic instance, checks both return identical solutions, and writes
// BENCH_core.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/common/strings.h"
#include "src/core/baselines.h"
#include "src/core/benefit_engine.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/greedy_state.h"
#include "src/core/instances.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace {

SetSystem MakeRandom(std::size_t elements, std::size_t sets,
                     std::size_t max_size) {
  Rng rng(7);
  RandomSystemSpec spec;
  spec.num_elements = elements;
  spec.num_sets = sets;
  spec.max_set_size = max_size;
  auto system = RandomSetSystem(spec, rng);
  return std::move(system).value();
}

void BM_CoverStateSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SetSystem system = MakeRandom(n, n / 2, 16);
  for (auto _ : state) {
    state.PauseTiming();
    CoverState cover(system);
    state.ResumeTiming();
    for (SetId id = 0; id < system.num_sets(); id += 7) {
      benchmark::DoNotOptimize(cover.Select(id));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(system.num_sets() / 7));
}
BENCHMARK(BM_CoverStateSelect)->Arg(1000)->Arg(10'000)->Arg(100'000);

void BM_LazySelectorDrain(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<std::size_t> counts(m);
  for (auto& c : counts) c = 1 + rng.NextBounded(1000);
  for (auto _ : state) {
    LazySelector selector;
    for (SetId id = 0; id < m; ++id) {
      selector.Push(MakeBenefitKey(counts[id], 1.0, id));
    }
    std::size_t drained = 0;
    while (selector
               .Pop([&](SetId id) -> std::optional<SelectionKey> {
                 return MakeBenefitKey(counts[id], 1.0, id);
               })
               .has_value()) {
      ++drained;
    }
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_LazySelectorDrain)->Arg(1000)->Arg(100'000);

void BM_CoverageTarget(benchmark::State& state) {
  double f = 0.0;
  std::size_t total = 0;
  for (auto _ : state) {
    f += 1e-7;
    total += SetSystem::CoverageTarget(f - std::floor(f), 700'000);
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_CoverageTarget);

void BM_CwscEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SetSystem system = MakeRandom(n, n, 12);
  for (auto _ : state) {
    auto solution = RunCwsc(system, {10, 0.3});
    benchmark::DoNotOptimize(solution);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CwscEndToEnd)->Arg(1000)->Arg(10'000)->Arg(50'000);

void BM_GreedyWscEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SetSystem system = MakeRandom(n, n, 12);
  for (auto _ : state) {
    GreedyWscOptions opts;
    opts.coverage_fraction = 0.5;
    auto solution = RunGreedyWeightedSetCover(system, opts);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_GreedyWscEndToEnd)->Arg(1000)->Arg(10'000);

// ---------------------------------------------------------------------------
// --engine-compare: seed engine vs default fast path on a dense synthetic.
// ---------------------------------------------------------------------------

struct CompareTimings {
  double cwsc_seconds = 0.0;
  double cmc_seconds = 0.0;
  Solution cwsc_solution;
  Solution cmc_solution;
};

/// Runs CWSC and CMC under `engine`, best wall-clock of `reps` runs each.
/// Every rep solves a *fresh copy* of the system so each configuration pays
/// its true single-call cost: the eager path's lazily built inverted index
/// is cached inside SetSystem, and letting reps share it would hide the
/// index build plus leave only the per-(element, containing set) decrement
/// storm — the two costs the lazy engine replaces with one flat row build
/// and O(n/64)-word recounts.
CompareTimings TimeEngine(const SetSystem& system, const EngineOptions& engine,
                          int reps, obs::TraceSession* trace = nullptr) {
  CompareTimings t;
  CwscOptions cwsc_options(10, 0.9);
  cwsc_options.engine = engine;
  cwsc_options.trace = trace;
  CmcOptions cmc_options;
  cmc_options.k = 10;
  cmc_options.coverage_fraction = 0.9;
  cmc_options.engine = engine;
  cmc_options.trace = trace;

  t.cwsc_seconds = 1e300;
  t.cmc_seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    {
      SetSystem fresh = system.Clone();  // untimed: drop any cached inverted index
      Stopwatch watch;
      auto cwsc = RunCwsc(fresh, cwsc_options);
      t.cwsc_seconds = std::min(t.cwsc_seconds, watch.ElapsedSeconds());
      SCWSC_CHECK(cwsc.ok(), "engine-compare CWSC failed");
      t.cwsc_solution = *std::move(cwsc);
    }
    {
      SetSystem fresh = system.Clone();
      Stopwatch watch;
      auto cmc = RunCmc(fresh, cmc_options);
      t.cmc_seconds = std::min(t.cmc_seconds, watch.ElapsedSeconds());
      SCWSC_CHECK(cmc.ok(), "engine-compare CMC failed");
      t.cmc_solution = std::move(cmc)->solution;
    }
  }
  return t;
}

bool SameSolution(const Solution& a, const Solution& b) {
  return a.sets == b.sets && a.total_cost == b.total_cost &&
         a.covered == b.covered;
}

int RunEngineCompare(const char* out_path) {
  bench::PrintBanner("BENCH_core",
                     "engine ablation: seed eager/list vs lazy/auto");

  // Dense synthetic: paper-scale 50k universe, 2k sets of up to n/2
  // elements, so the average element sits in ~500 sets.
  const std::size_t n = bench::ScaledRows(50'000);
  Rng rng(2015);
  RandomSystemSpec spec;
  spec.num_elements = n;
  spec.num_sets = 2000;
  spec.max_set_size = n / 2;
  spec.duplicate_cost_probability = 0.1;
  SetSystem system = RandomSetSystem(spec, rng).value();

  const int reps = 3;
  const EngineOptions seed_engine = SeedReferenceEngine();
  const EngineOptions fast_engine;  // default: lazy + auto rows
  CompareTimings seed = TimeEngine(system, seed_engine, reps);
  // Tracing disabled (trace = nullptr): the instrumented hot loops cost one
  // pointer branch per would-be record. These timings are the <2%-regression
  // guard figure recorded below.
  CompareTimings fast = TimeEngine(system, fast_engine, reps);
  // The same fast path with a live TraceSession: spans, events and counters
  // all recording. The ratio against `fast` is the enabled-tracing price.
  obs::TraceSession session;
  CompareTimings traced = TimeEngine(system, fast_engine, reps, &session);

  if (!SameSolution(seed.cwsc_solution, fast.cwsc_solution) ||
      !SameSolution(seed.cmc_solution, fast.cmc_solution) ||
      !SameSolution(fast.cwsc_solution, traced.cwsc_solution) ||
      !SameSolution(fast.cmc_solution, traced.cmc_solution)) {
    std::fprintf(stderr,
                 "FAIL: engine configurations returned different solutions\n");
    return 1;
  }

  const double cwsc_speedup = seed.cwsc_seconds / fast.cwsc_seconds;
  const double cmc_speedup = seed.cmc_seconds / fast.cmc_seconds;
  const double cwsc_trace_overhead =
      traced.cwsc_seconds / fast.cwsc_seconds - 1.0;
  const double cmc_trace_overhead =
      traced.cmc_seconds / fast.cmc_seconds - 1.0;
  bench::PrintCsvRow("BENCH_core",
                     {"cwsc_eager_s=" + bench::Secs(seed.cwsc_seconds),
                      "cwsc_lazy_s=" + bench::Secs(fast.cwsc_seconds),
                      "cmc_eager_s=" + bench::Secs(seed.cmc_seconds),
                      "cmc_lazy_s=" + bench::Secs(fast.cmc_seconds),
                      "cwsc_traced_s=" + bench::Secs(traced.cwsc_seconds),
                      "cmc_traced_s=" + bench::Secs(traced.cmc_seconds)});
  std::printf("engine-compare: solutions identical; CWSC %.2fx, CMC %.2fx\n",
              cwsc_speedup, cmc_speedup);
  std::printf("tracing enabled overhead: CWSC %+.1f%%, CMC %+.1f%%\n",
              100.0 * cwsc_trace_overhead, 100.0 * cmc_trace_overhead);

  // Per-phase breakdown of the traced reps, for the JSON row.
  std::string phases_json;
  for (const auto& [name, seconds] : session.PhaseTotals()) {
    if (!phases_json.empty()) phases_json += ", ";
    phases_json += StrFormat("\"%s\": %.6f", name.c_str(), seconds);
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"experiment\": \"BENCH_core\",\n"
               "  \"scale\": %g,\n"
               "  \"elements\": %zu,\n"
               "  \"sets\": %zu,\n"
               "  \"reps\": %d,\n"
               "  \"identical_solutions\": true,\n"
               "  \"configs\": [\n"
               "    {\"name\": \"eager/list\", \"cwsc_seconds\": %.6f, "
               "\"cmc_seconds\": %.6f},\n"
               "    {\"name\": \"lazy/auto\", \"cwsc_seconds\": %.6f, "
               "\"cmc_seconds\": %.6f},\n"
               "    {\"name\": \"lazy/auto+trace\", \"cwsc_seconds\": %.6f, "
               "\"cmc_seconds\": %.6f}\n"
               "  ],\n"
               "  \"speedup\": {\"cwsc\": %.3f, \"cmc\": %.3f},\n"
               "  \"trace_overhead\": {\"cwsc\": %.4f, \"cmc\": %.4f},\n"
               "  \"phases\": {%s}\n"
               "}\n",
               bench::ScaleFactor(), n, system.num_sets(), reps,
               seed.cwsc_seconds, seed.cmc_seconds, fast.cwsc_seconds,
               fast.cmc_seconds, traced.cwsc_seconds, traced.cmc_seconds,
               cwsc_speedup, cmc_speedup, cwsc_trace_overhead,
               cmc_trace_overhead, phases_json.c_str());
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace scwsc

int main(int argc, char** argv) {
  const char* out_path = "BENCH_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine-compare") == 0) {
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--out=", 6) == 0) {
        out_path = argv[i + 1] + 6;
      }
      return scwsc::RunEngineCompare(out_path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
