// EXP-F5 — Figure 5: running time vs data size.
//
// Paper setup: random samples of the LBL trace from ~100k to ~700k tuples,
// k = 10, ŝ = 0.3, b = 1, ε = 1. Expected shape: optimized variants at
// least ~2x faster than their unoptimized counterparts, with the gap
// growing in n; CWSC faster than CMC.

#include <cstdio>

#include "bench/fig_common.h"
#include "src/common/rng.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-F5", "Fig. 5: running time vs number of tuples");
  std::printf("%10s %12s %12s %12s %12s\n", "tuples", "CWSC(s)",
              "optCWSC(s)", "CMC(s)", "optCMC(s)");

  const std::size_t max_rows = ScaledRows(700'000);
  Table base = MakeTrace(max_rows);
  Rng rng(2015);

  for (int step = 1; step <= 7; ++step) {
    const std::size_t rows = max_rows * static_cast<std::size_t>(step) / 7;
    Table sample = base.Sample(rows, rng);
    const std::size_t sampled = sample.num_rows();
    api::InstancePtr instance = MakeSnapshot(std::move(sample));
    QuadResult q = RunQuad(instance, /*k=*/10, /*fraction=*/0.3, /*b=*/1.0,
                           /*epsilon=*/1.0, TimeEnumeration(instance));
    std::printf("%10zu %12s %12s %12s %12s\n", sampled,
                Secs(q.cwsc_seconds).c_str(), Secs(q.opt_cwsc_seconds).c_str(),
                Secs(q.cmc_seconds).c_str(), Secs(q.opt_cmc_seconds).c_str());
    PrintCsvRow("fig5",
                {std::to_string(sampled), Secs(q.cwsc_seconds),
                 Secs(q.opt_cwsc_seconds), Secs(q.cmc_seconds),
                 Secs(q.opt_cmc_seconds)});
  }
  return 0;
}
