// EXP-ABL — ablations over CMC's design knobs beyond the paper's grid:
//   (a) budget growth b: rounds vs final cost (finer schedules track the
//       optimal budget closer at more rounds);
//   (b) epsilon: solution-size cap vs cost (the §V-A3 trade-off);
//   (c) generalized level base l (§V-A2): l = 1 minimizes sets at the
//       expense of cost, larger l flattens the level structure.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-ABL", "Ablations: CMC budget schedule, epsilon, level base");

  const api::InstancePtr instance =
      MakeTraceSnapshot(350'000);

  auto run = [&](double b, double eps, unsigned l) {
    api::SolveResult r = MustSolve(
        "opt-cmc",
        MakeRequest(instance, 10, 0.4,
                    {StrFormat("b=%g", b), StrFormat("epsilon=%g", eps),
                     StrFormat("l=%u", l), "strict=true"}));
    std::printf("b=%-5g eps=%-4g l=%-2u | sets=%-4zu cost=%-10s rounds=%-3zu "
                "considered=%-9zu time=%ss\n",
                b, eps, l, r.labels.size(),
                FormatNumber(r.total_cost, 6).c_str(),
                r.counters.budget_rounds, r.counters.sets_considered,
                Secs(r.seconds).c_str());
    PrintCsvRow("ablation",
                {StrFormat("%g", b), StrFormat("%g", eps), StrFormat("%u", l),
                 std::to_string(r.labels.size()),
                 FormatNumber(r.total_cost, 6),
                 std::to_string(r.counters.budget_rounds), Secs(r.seconds)});
  };

  std::printf("\n-- (a) budget growth b (eps=1, l=1) --\n");
  for (double b : {0.25, 0.5, 1.0, 2.0, 4.0}) run(b, 1.0, 1);

  std::printf("\n-- (b) epsilon (b=1, l=1) --\n");
  for (double eps : {0.25, 0.5, 1.0, 2.0, 4.0}) run(1.0, eps, 1);

  std::printf("\n-- (c) generalized level base 1+l (b=1, eps=0) --\n");
  for (unsigned l : {1u, 2u, 3u, 5u}) run(1.0, 0.0, l);

  return 0;
}
