// BENCH_serve_soak — an open-loop soak of live multi-tenant serving.
//
// One set-system snapshot published as head "live" in a SnapshotStore,
// three tenants with weighted fair shares, and a Poisson request stream
// (open loop: arrival times are drawn up front and honored regardless of
// how the scheduler keeps up) interleaved with live deltas that advance
// the head every few arrivals. A shadow copy of the set system replays
// every mutation so each published version can be rebuilt from scratch and
// compared bit for bit.
//
// Gates (exit 1 on any failure), written to BENCH_serve_soak.json:
//   g1 bit-identity: at EVERY delta version, the delta-applied snapshot's
//      content hash (and per-shard hashes) equal a from-scratch rebuild
//      over the shadow system — and a reference solve on both agrees;
//   g2 incrementality: every add-only delta chains at least one shard
//      (removals renumber ids and legitimately dirty most shards), and
//      serve.snapshot_cache.shard_shared > 0 (unchanged shards recognized
//      as shared across versions);
//   g3 zero starvation: every tenant's jobs all complete with at least one
//      success per tenant, and no tenant's share of dispatches collapses
//      (weighted-fair dequeue holds under the mixed stream);
//   g4 p99 SLO: end-to-end p99 latency stays under the (scale-adjusted)
//      bound, and the telemetry pump evaluated a tenant-scoped SLO rule.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/delta.h"
#include "src/api/instance.h"
#include "src/api/registry.h"
#include "src/api/solver.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/core/set_system.h"
#include "src/serve/json.h"
#include "src/serve/scheduler.h"
#include "src/serve/server.h"
#include "src/serve/slo.h"

namespace scwsc {
namespace {

constexpr std::uint64_t kSeed = 20260808;
constexpr double kMeanInterArrivalSeconds = 0.004;
constexpr std::size_t kArrivalsPerDelta = 8;

ShardingOptions Sharding() {
  ShardingOptions sharding;
  sharding.num_shards = 8;
  sharding.min_shard_elements = 64;
  return sharding;
}

/// Universe and request-count scale with SCWSC_BENCH_SCALE like every other
/// bench; the floor keeps the soak meaningful at CI's 0.02.
std::size_t Universe() {
  return 64 * std::max<std::size_t>(
                  8, static_cast<std::size_t>(160.0 * bench::ScaleFactor()));
}

std::size_t NumArrivals() {
  return std::max<std::size_t>(
      48, static_cast<std::size_t>(2000.0 * bench::ScaleFactor()));
}

SetSystem BaseSystem(std::size_t universe, Rng& rng) {
  SetSystem system(universe);
  // Block sets guarantee feasibility; random sets give greedy real choices.
  for (std::size_t block = 0; block < universe / 64; ++block) {
    std::vector<ElementId> elements;
    for (std::size_t e = block * 64; e < (block + 1) * 64; ++e) {
      elements.push_back(static_cast<ElementId>(e));
    }
    if (!system
             .AddSet(std::move(elements), 1.0 + rng.NextDouble(),
                     "block-" + std::to_string(block))
             .ok()) {
      std::abort();
    }
  }
  for (std::size_t extra = 0; extra < universe / 32; ++extra) {
    std::vector<ElementId> elements;
    const std::size_t size = 8 + rng.NextBounded(56);
    for (std::size_t i = 0; i < size; ++i) {
      elements.push_back(static_cast<ElementId>(rng.NextBounded(universe)));
    }
    if (!system
             .AddSet(std::move(elements), 0.5 + rng.NextDouble(),
                     "extra-" + std::to_string(extra))
             .ok()) {
      std::abort();
    }
  }
  return system;
}

api::InstancePtr Snapshot(const SetSystem& system) {
  SetSystem copy(system.num_elements());
  for (const WeightedSet& s : system.sets()) {
    if (!copy.AddSet(s.elements, s.cost, s.label).ok()) std::abort();
  }
  auto instance =
      api::InstanceSnapshot::FromSetSystem(std::move(copy), Sharding());
  if (!instance.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", instance.status().ToString().c_str());
    std::abort();
  }
  return *instance;
}

/// A random mutation, replayed into `shadow`. Most deltas are add-only with
/// the new set's elements confined to one 64-element block, i.e. one shard
/// — the fully local case the per-delta chaining gate covers. Every fourth
/// delta also removes a tail set, which legitimately dirties most shards
/// (removal renumbers ids), so those are exempt from the per-delta gate.
api::SnapshotDelta NextDelta(std::size_t universe, std::size_t version,
                             SetSystem& shadow, Rng& rng, bool* add_only) {
  api::SnapshotDelta delta;
  *add_only = version % 4 != 0;
  if (!*add_only && shadow.num_sets() > 4) {
    const SetId victim =
        static_cast<SetId>(shadow.num_sets() - 1 - rng.NextBounded(3));
    delta.remove_sets.push_back(victim);
  }
  api::SnapshotDelta::SetAdd add;
  const std::size_t block = rng.NextBounded(universe / 64);
  const std::size_t size = 4 + rng.NextBounded(28);
  for (std::size_t i = 0; i < size; ++i) {
    add.elements.push_back(
        static_cast<ElementId>(block * 64 + rng.NextBounded(64)));
  }
  add.cost = 0.5 + rng.NextDouble();
  add.label = "delta-" + std::to_string(version);
  delta.add_sets.push_back(add);

  // Replay into the shadow: survivors in id order, then the append — the
  // same rebuild order ApplyDelta documents.
  SetSystem next(shadow.num_elements());
  for (SetId id = 0; id < shadow.num_sets(); ++id) {
    bool removed = false;
    for (const SetId r : delta.remove_sets) removed = removed || r == id;
    if (removed) continue;
    const WeightedSet& s = shadow.set(id);
    if (!next.AddSet(s.elements, s.cost, s.label).ok()) std::abort();
  }
  if (!next.AddSet(add.elements, add.cost, add.label).ok()) std::abort();
  shadow = std::move(next);
  return delta;
}

std::vector<std::string> ReferenceSolve(const api::InstancePtr& instance) {
  auto request = api::SolveRequest::Builder(instance)
                     .WithK(8)
                     .WithCoverage(0.5)
                     .Build();
  if (!request.ok()) std::abort();
  auto result =
      api::SolverRegistry::Global().Solve("greedy-wsc", *request, nullptr);
  if (!result.ok()) {
    std::fprintf(stderr, "reference solve: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return result->labels;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

}  // namespace

int Run(const char* out_path) {
  Rng rng(kSeed);
  const std::size_t universe = Universe();
  const std::size_t arrivals = NumArrivals();
  SetSystem shadow = BaseSystem(universe, rng);

  // Tenants: acme gets 3x the fair share of beta/gamma; quotas unlimited
  // (starvation, not admission, is under test here).
  const std::vector<std::pair<std::string, double>> tenants = {
      {"acme", 3.0}, {"beta", 1.0}, {"gamma", 1.0}};
  serve::SchedulerOptions scheduler_options;
  scheduler_options.tenant.enabled = true;
  for (const auto& [name, weight] : tenants) {
    serve::TenantQuota quota;
    quota.weight = weight;
    scheduler_options.tenant.quotas[name] = quota;
  }
  {
    auto rule = serve::ParseSloRule("tenant=acme:p99_latency_ms<=60000");
    if (!rule.ok()) std::abort();
    scheduler_options.telemetry.slo_rules.push_back(*std::move(rule));
    scheduler_options.telemetry.interval_seconds = 0.1;
  }

  ThreadPool pool(2);
  serve::SolveScheduler scheduler(&pool, scheduler_options);
  serve::SnapshotStore store(&scheduler.snapshot_cache());
  if (!store.Put("live", Snapshot(shadow)).ok()) std::abort();

  // The open-loop schedule: Poisson arrivals drawn up front.
  std::vector<double> arrival_at(arrivals);
  double clock = 0.0;
  for (std::size_t i = 0; i < arrivals; ++i) {
    clock += -kMeanInterArrivalSeconds * std::log(1.0 - rng.NextDouble());
    arrival_at[i] = clock;
  }

  struct Pending {
    std::string tenant;
    std::future<serve::JobOutcome> future;
  };
  std::vector<Pending> pending;
  pending.reserve(arrivals);

  bool bit_identity_ok = true;
  bool chained_every_delta = true;
  std::size_t deltas_applied = 0;
  std::size_t total_chained = 0, total_rehashed = 0;

  Stopwatch wall;
  for (std::size_t i = 0; i < arrivals; ++i) {
    const double until = arrival_at[i] - wall.ElapsedSeconds();
    if (until > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(until));
    }

    // A live delta every kArrivalsPerDelta arrivals, verified against the
    // shadow rebuild immediately (gate g1) — the serving loop keeps going.
    if (i > 0 && i % kArrivalsPerDelta == 0) {
      ++deltas_applied;
      bool add_only = false;
      const api::SnapshotDelta delta =
          NextDelta(universe, deltas_applied, shadow, rng, &add_only);
      auto applied = store.Apply("live", delta);
      if (!applied.ok()) {
        std::fprintf(stderr, "delta %zu: %s\n", deltas_applied,
                     applied.status().ToString().c_str());
        bit_identity_ok = false;
        continue;
      }
      total_chained += applied->stats.shards_chained;
      total_rehashed += applied->stats.shards_rehashed;
      if (add_only && applied->stats.shards_chained == 0) {
        chained_every_delta = false;
      }
      const api::InstancePtr rebuilt = Snapshot(shadow);
      if (rebuilt->content_hash() != applied->snapshot->content_hash() ||
          rebuilt->shard_hashes() != applied->snapshot->shard_hashes()) {
        std::fprintf(stderr, "delta %zu: hash mismatch vs rebuild\n",
                     deltas_applied);
        bit_identity_ok = false;
      } else if (ReferenceSolve(rebuilt) !=
                 ReferenceSolve(applied->snapshot)) {
        std::fprintf(stderr, "delta %zu: solve mismatch vs rebuild\n",
                     deltas_applied);
        bit_identity_ok = false;
      }
    }

    // Weighted tenant mix: acme arrives 3x as often, matching its share.
    const double pick = rng.NextDouble() * 5.0;
    const std::string& tenant =
        pick < 3.0 ? tenants[0].first
                   : (pick < 4.0 ? tenants[1].first : tenants[2].first);
    auto head = store.Get("live");
    if (!head.ok()) std::abort();
    auto request = api::SolveRequest::Builder(*head)
                       .WithK(6)
                       .WithCoverage(
                           0.4 + 0.002 * static_cast<double>(
                                             rng.NextBounded(50)))
                       .WithLabel("soak-" + std::to_string(i))
                       .WithTenant(tenant)
                       .Build();
    if (!request.ok()) std::abort();
    serve::SolveJob job;
    job.solver = "greedy-wsc";
    job.request = *std::move(request);
    auto future = scheduler.Enqueue(std::move(job));
    if (!future.ok()) {
      std::fprintf(stderr, "enqueue %zu: %s\n", i,
                   future.status().ToString().c_str());
      continue;
    }
    pending.push_back(Pending{tenant, std::move(*future)});
  }

  // Drain: every admitted future must resolve (no starvation, no loss).
  std::map<std::string, std::size_t> completed, succeeded;
  std::map<std::string, double> worst_latency;
  std::vector<double> latencies;
  for (Pending& p : pending) {
    serve::JobOutcome outcome = p.future.get();
    const double latency = outcome.queue_seconds + outcome.run_seconds;
    latencies.push_back(latency);
    ++completed[p.tenant];
    if (outcome.result.ok()) ++succeeded[p.tenant];
    worst_latency[p.tenant] = std::max(worst_latency[p.tenant], latency);
  }
  const double wall_seconds = wall.ElapsedSeconds();
  scheduler.FlushTelemetry();
  scheduler.Drain();

  const double p99 = Percentile(latencies, 0.99);
  // Generous under CI noise; the gate is "bounded", not "fast".
  const double p99_bound_seconds = 5.0;

  bool no_starvation = true;
  for (const auto& [name, weight] : tenants) {
    if (completed[name] == 0 || succeeded[name] == 0) no_starvation = false;
  }
  if (pending.size() != latencies.size()) no_starvation = false;

  const std::uint64_t shard_shared =
      scheduler.metrics().CounterValue("serve.snapshot_cache.shard_shared");
  const bool g1 = bit_identity_ok && deltas_applied > 0;
  const bool g2 = chained_every_delta && shard_shared > 0;
  const bool g3 = no_starvation;
  const bool g4 = p99 <= p99_bound_seconds &&
                  scheduler.telemetry() != nullptr &&
                  scheduler.telemetry()->ticks() > 0;

  serve::JsonObject gates;
  gates["g1_bit_identity_every_version"] = serve::JsonValue(g1);
  gates["g2_shard_chaining_and_sharing"] = serve::JsonValue(g2);
  gates["g3_zero_tenant_starvation"] = serve::JsonValue(g3);
  gates["g4_p99_slo"] = serve::JsonValue(g4);

  serve::JsonObject tenants_obj;
  for (const auto& [name, weight] : tenants) {
    serve::JsonObject t;
    t["weight"] = serve::JsonValue(weight);
    t["completed"] = serve::JsonValue(completed[name]);
    t["succeeded"] = serve::JsonValue(succeeded[name]);
    t["worst_latency_seconds"] = serve::JsonValue(worst_latency[name]);
    tenants_obj[name] = serve::JsonValue(std::move(t));
  }

  serve::JsonObject root;
  root["bench"] = serve::JsonValue("serve_soak");
  root["scale"] = serve::JsonValue(bench::ScaleFactor());
  root["universe"] = serve::JsonValue(universe);
  root["arrivals"] = serve::JsonValue(arrivals);
  root["deltas_applied"] = serve::JsonValue(deltas_applied);
  root["shards_chained_total"] = serve::JsonValue(total_chained);
  root["shards_rehashed_total"] = serve::JsonValue(total_rehashed);
  root["snapshot_cache_shard_shared"] =
      serve::JsonValue(static_cast<std::size_t>(shard_shared));
  root["wall_seconds"] = serve::JsonValue(wall_seconds);
  root["p50_latency_seconds"] = serve::JsonValue(Percentile(latencies, 0.5));
  root["p99_latency_seconds"] = serve::JsonValue(p99);
  root["p99_bound_seconds"] = serve::JsonValue(p99_bound_seconds);
  root["gates"] = serve::JsonValue(std::move(gates));
  root["tenants"] = serve::JsonValue(std::move(tenants_obj));

  const serve::JsonValue report(std::move(root));
  if (auto written = serve::WriteJsonFile(report, out_path); !written.ok()) {
    std::fprintf(stderr, "write: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report.Dump().c_str());
  const bool all = g1 && g2 && g3 && g4;
  std::printf("# serve_soak: %zu arrivals, %zu deltas, p99 %.3fs -> %s\n",
              arrivals, deltas_applied, p99, all ? "PASS" : "FAIL");
  return all ? 0 : 1;
}

}  // namespace scwsc

int main(int argc, char** argv) {
  return scwsc::Run(argc > 1 ? argv[1] : "BENCH_serve_soak.json");
}
