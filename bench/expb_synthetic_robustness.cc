// EXP-SYN — §VI-B: CWSC solution quality is robust across measure
// distributions. Two synthetic groups derived from the base trace:
//   group 1: each measure m redrawn uniformly from [(1-δ)m, (1+δ)m];
//   group 2: measures redrawn log-normal(log-mean 2, σ ∈ {1..4}),
//            rank-preservingly reassigned.
// Expected shape (paper: "results ... were similar to Table IV"): CWSC's
// cost stays at or near CMC's across all rewrites.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/gen/perturb.h"
#include "src/pattern/opt_cmc.h"
#include "src/pattern/opt_cwsc.h"

namespace {

void Compare(const scwsc::Table& table, const std::string& label) {
  using namespace scwsc;
  using namespace scwsc::bench;
  const pattern::CostFunction cost_fn(pattern::CostKind::kMax);
  auto cwsc = pattern::RunOptimizedCwsc(table, cost_fn, {10, 0.3});
  SCWSC_CHECK(cwsc.ok(), "CWSC failed");
  CmcOptions opts;
  opts.k = 10;
  opts.coverage_fraction = 0.3;
  opts.relax_coverage = false;
  auto cmc = pattern::RunOptimizedCmc(table, cost_fn, opts);
  SCWSC_CHECK(cmc.ok(), "CMC failed");
  std::printf("%-22s %14s %14s %10.2f\n", label.c_str(),
              FormatNumber(cwsc->total_cost, 6).c_str(),
              FormatNumber(cmc->total_cost, 6).c_str(),
              cwsc->total_cost / cmc->total_cost);
  PrintCsvRow("exp_syn", {label, FormatNumber(cwsc->total_cost, 6),
                          FormatNumber(cmc->total_cost, 6)});
}

}  // namespace

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-SYN", "§VI-B: robustness across measure distributions");
  std::printf("%-22s %14s %14s %10s\n", "measure rewrite", "CWSC cost",
              "CMC cost", "ratio");

  Table base = MakeTrace(ScaledRows(700'000));
  Rng rng(1106);

  Compare(base, "original");
  for (double delta : {0.25, 0.5, 0.75, 1.0}) {
    auto table = gen::UniformPerturbMeasure(base, delta, rng);
    SCWSC_CHECK(table.ok(), "perturbation failed");
    Compare(*table, StrFormat("uniform delta=%.2f", delta));
  }
  for (double sigma : {1.0, 2.0, 3.0, 4.0}) {
    auto table = gen::LogNormalRankPreserving(base, 2.0, sigma, rng);
    SCWSC_CHECK(table.ok(), "rewrite failed");
    Compare(*table, StrFormat("lognormal sigma=%.0f", sigma));
  }
  return 0;
}
