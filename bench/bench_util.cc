#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace scwsc {
namespace bench {

double ScaleFactor() {
  static const double scale = [] {
    const char* env = std::getenv("SCWSC_BENCH_SCALE");
    if (env == nullptr) return 0.1;
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || v <= 0.0) {
      SCWSC_LOG_WARN("ignoring invalid SCWSC_BENCH_SCALE='%s'", env);
      return 0.1;
    }
    return v;
  }();
  return scale;
}

std::size_t ScaledRows(std::size_t paper_rows) {
  const double scaled = static_cast<double>(paper_rows) * ScaleFactor();
  return scaled < 1000.0 ? 1000 : static_cast<std::size_t>(scaled);
}

Table MakeTrace(std::size_t rows, std::uint64_t seed) {
  gen::LblSynthSpec spec;
  spec.num_rows = rows;
  spec.seed = seed;
  auto table = gen::MakeLblSynth(spec);
  SCWSC_CHECK(table.ok(), "trace generation failed: %s",
              table.status().ToString().c_str());
  return std::move(table).value();
}

api::InstancePtr MakeSnapshot(
    Table table, pattern::CostKind kind,
    std::optional<hierarchy::TableHierarchy> hierarchy,
    ShardingOptions sharding) {
  auto snapshot = api::InstanceSnapshot::FromTable(
      std::move(table), pattern::CostFunction(kind), std::move(hierarchy), {},
      sharding);
  SCWSC_CHECK(snapshot.ok(), "snapshot construction failed: %s",
              snapshot.status().ToString().c_str());
  return *std::move(snapshot);
}

api::InstancePtr MakeTraceSnapshot(std::size_t paper_rows,
                                   pattern::CostKind kind,
                                   ShardingOptions sharding) {
  return MakeSnapshot(MakeTrace(ScaledRows(paper_rows)), kind, std::nullopt,
                      sharding);
}

api::SolveRequest MakeRequest(api::InstancePtr instance, std::size_t k,
                              double fraction,
                              const std::vector<std::string>& options) {
  auto request = api::SolveRequest::Builder(std::move(instance))
                     .WithK(k)
                     .WithCoverage(fraction)
                     .WithOptions(options)
                     .Build();
  SCWSC_CHECK(request.ok(), "bad bench request: %s",
              request.status().ToString().c_str());
  return *std::move(request);
}

api::SolveResult MustSolve(const std::string& solver,
                           const api::SolveRequest& request) {
  auto result = api::SolverRegistry::Global().Solve(solver, request);
  SCWSC_CHECK(result.ok(), "%s failed: %s", solver.c_str(),
              result.status().ToString().c_str());
  return *std::move(result);
}

void PrintBanner(const std::string& experiment_id,
                 const std::string& paper_artifact) {
  std::printf("\n=== %s — %s ===\n", experiment_id.c_str(),
              paper_artifact.c_str());
  std::printf("scale=%g (SCWSC_BENCH_SCALE; 1.0 = paper-sized axes)\n",
              ScaleFactor());
}

void PrintCsvRow(const std::string& experiment_id,
                 const std::vector<std::string>& values) {
  std::string line = "#csv," + experiment_id;
  for (const auto& v : values) {
    line += ',';
    line += v;
  }
  std::printf("%s\n", line.c_str());
}

std::string Secs(double seconds) { return StrFormat("%.3f", seconds); }

}  // namespace bench
}  // namespace scwsc
