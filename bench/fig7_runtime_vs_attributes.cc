// EXP-F7 — Figure 7: running time vs number of pattern attributes.
//
// Paper setup: remove one pattern attribute at a time from the trace
// (1..5 attributes), fixed n, k = 10, ŝ = 0.3. Expected shape: all
// variants grow with attribute count; the optimized/unoptimized gap widens
// as attributes (and hence the pattern space) grow.

#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/fig_common.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-F7", "Fig. 7: running time vs number of attributes");
  std::printf("%6s %12s %12s %12s %12s\n", "attrs", "CWSC(s)", "optCWSC(s)",
              "CMC(s)", "optCMC(s)");

  const std::size_t rows = ScaledRows(700'000);
  Table base = MakeTrace(rows);

  for (std::size_t attrs = 1; attrs <= base.num_attributes(); ++attrs) {
    std::vector<std::size_t> keep(attrs);
    std::iota(keep.begin(), keep.end(), 0u);
    auto projected = base.ProjectAttributes(keep);
    SCWSC_CHECK(projected.ok(), "projection failed");
    api::InstancePtr instance = MakeSnapshot(*std::move(projected));
    QuadResult q = RunQuad(instance, 10, 0.3, 1.0, 1.0,
                           TimeEnumeration(instance));
    std::printf("%6zu %12s %12s %12s %12s\n", attrs,
                Secs(q.cwsc_seconds).c_str(), Secs(q.opt_cwsc_seconds).c_str(),
                Secs(q.cmc_seconds).c_str(), Secs(q.opt_cmc_seconds).c_str());
    PrintCsvRow("fig7", {std::to_string(attrs), Secs(q.cwsc_seconds),
                         Secs(q.opt_cwsc_seconds), Secs(q.cmc_seconds),
                         Secs(q.opt_cmc_seconds)});
  }
  return 0;
}
