// EXP-AS — §III related work: AlphaSum's non-overlap constraint vs SCWSC.
//
// AlphaSum [5] restricts summaries to k *non-overlapping* patterns; the
// paper argues SCWSC should not adopt that constraint. This bench runs a
// disjointness-constrained greedy next to CWSC at equal (k, ŝ) on the
// trace, under both selection instincts: the gain rule fragments the space
// on cheap specks and stalls far below the target, while the benefit rule
// survives only by grabbing the all-wildcards pattern at several times
// CWSC's cost. Either way, coverage overlap is what lets SCWSC combine one
// broad cheap pattern with precise patches — the §III argument.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/core/set_system.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-AS", "§III: non-overlapping (AlphaSum-style) vs SCWSC");

  Table base = MakeTrace(ScaledRows(350'000));
  const std::size_t num_rows = base.num_rows();
  const api::InstancePtr instance = MakeSnapshot(std::move(base));

  std::printf("%4s %6s | %12s | %16s | %16s %8s\n", "k", "s", "CWSC cost",
              "gain-rule cov.", "benefit-rule", "ratio");
  const double n = static_cast<double>(num_rows);
  for (std::size_t k : {2u, 5u, 10u, 20u}) {
    for (double s : {0.3, 0.5}) {
      api::SolveResult cwsc = MustSolve("cwsc", MakeRequest(instance, k, s));
      api::SolveResult by_gain = MustSolve(
          "nonoverlap",
          MakeRequest(instance, k, s, {"best_effort=true", "rule=gain"}));
      api::SolveResult by_benefit = MustSolve(
          "nonoverlap",
          MakeRequest(instance, k, s, {"best_effort=true", "rule=benefit"}));

      const bool benefit_feasible =
          by_benefit.covered >= SetSystem::CoverageTarget(s, num_rows);
      std::printf("%4zu %6.1f | %12s | %14.1f%% | %16s %7.1fx\n", k, s,
                  FormatNumber(cwsc.total_cost, 5).c_str(),
                  100.0 * static_cast<double>(by_gain.covered) / n,
                  benefit_feasible
                      ? FormatNumber(by_benefit.total_cost, 5).c_str()
                      : "stalled",
                  benefit_feasible ? by_benefit.total_cost / cwsc.total_cost
                                   : 0.0);
      PrintCsvRow("exp_alphasum",
                  {std::to_string(k), StrFormat("%.1f", s),
                   FormatNumber(cwsc.total_cost, 6),
                   std::to_string(by_gain.covered),
                   FormatNumber(by_benefit.total_cost, 6),
                   std::to_string(by_benefit.covered)});
    }
  }
  return 0;
}
