// EXP-F9 — Figure 9: running time vs coverage fraction ŝ.
//
// Paper setup: ŝ from 0.2 to 0.7 at fixed n, k = 10. Expected shape: CWSC
// roughly flat in ŝ (iteration count depends only on k); CMC increasing in
// ŝ (harder to satisfy the target within a budget, so more budget rounds).

#include <cstdio>

#include "bench/fig_common.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-F9", "Fig. 9: running time vs coverage fraction");
  std::printf("%6s %12s %12s %12s %12s\n", "s", "CWSC(s)", "optCWSC(s)",
              "CMC(s)", "optCMC(s)");

    // One snapshot (and one timed enumeration) serves the whole ŝ-sweep.
  api::InstancePtr instance = MakeTraceSnapshot(700'000);
  const double enumeration_seconds = TimeEnumeration(instance);

  for (double s : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    QuadResult q = RunQuad(instance, 10, s, 1.0, 1.0, enumeration_seconds);
    std::printf("%6.1f %12s %12s %12s %12s\n", s, Secs(q.cwsc_seconds).c_str(),
                Secs(q.opt_cwsc_seconds).c_str(), Secs(q.cmc_seconds).c_str(),
                Secs(q.opt_cmc_seconds).c_str());
    char sbuf[16];
    std::snprintf(sbuf, sizeof(sbuf), "%.1f", s);
    PrintCsvRow("fig9", {sbuf, Secs(q.cwsc_seconds),
                         Secs(q.opt_cwsc_seconds), Secs(q.cmc_seconds),
                         Secs(q.opt_cmc_seconds)});
  }
  return 0;
}
