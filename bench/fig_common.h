// Shared runner for the Figure 5-9 benches: times the four solver variants
// (unoptimized/optimized CWSC and CMC) on one table and reports the
// "patterns considered" counters behind Fig. 6.
//
// Unoptimized timings include full pattern enumeration + set-system
// construction and run the *literal* Fig. 1 / Fig. 2 pseudocode
// (core/literal.h): computing and re-subtracting the marginal benefit of
// every possible pattern is part of those algorithms, which is exactly the
// work the §V-C optimizations remove. (The tuned generic engines in
// cwsc.h/cmc.h — inverted indexes + lazy heaps — are compared against the
// literal ones separately in bench/ablation_engine.)

#ifndef SCWSC_BENCH_FIG_COMMON_H_
#define SCWSC_BENCH_FIG_COMMON_H_

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/core/cmc.h"
#include "src/core/cwsc.h"
#include "src/core/literal.h"
#include "src/pattern/opt_cmc.h"
#include "src/pattern/opt_cwsc.h"
#include "src/pattern/pattern_system.h"

namespace scwsc {
namespace bench {

struct QuadResult {
  double cwsc_seconds = 0.0;
  double opt_cwsc_seconds = 0.0;
  double cmc_seconds = 0.0;
  double opt_cmc_seconds = 0.0;

  std::size_t cwsc_considered = 0;      // enumerated patterns
  std::size_t cmc_considered = 0;       // enumerated patterns x budget rounds
  std::size_t opt_cwsc_considered = 0;  // lattice frontier
  std::size_t opt_cmc_considered = 0;   // lattice frontier, summed over rounds

  std::size_t cmc_rounds = 0;
  std::size_t opt_cmc_rounds = 0;

  double cwsc_cost = 0.0;
  double cmc_cost = 0.0;
  double opt_cwsc_cost = 0.0;
  double opt_cmc_cost = 0.0;
};

/// Runs all four variants with the given parameters (paper defaults: k=10,
/// ŝ=0.3, b=1, ε=1 — §VI-A) and the max measure cost.
inline QuadResult RunQuad(const Table& table, std::size_t k, double fraction,
                          double b, double epsilon) {
  QuadResult out;
  const pattern::CostFunction cost_fn(pattern::CostKind::kMax);

  CwscOptions cwsc_opts{k, fraction};
  CmcOptions cmc_opts;
  cmc_opts.k = k;
  cmc_opts.coverage_fraction = fraction;
  cmc_opts.b = b;
  cmc_opts.epsilon = epsilon;

  {  // Unoptimized CWSC: enumerate every pattern, then Fig. 2 verbatim.
    Stopwatch sw;
    auto system = pattern::PatternSystem::Build(table, cost_fn);
    SCWSC_CHECK(system.ok(), "enumeration failed");
    auto solution = RunCwscLiteral(system->set_system(), cwsc_opts);
    out.cwsc_seconds = sw.ElapsedSeconds();
    SCWSC_CHECK(solution.ok(), "CWSC failed");
    out.cwsc_cost = solution->total_cost;
    out.cwsc_considered = system->num_patterns();
  }
  {  // Unoptimized CMC: enumeration + Fig. 1 verbatim.
    Stopwatch sw;
    auto system = pattern::PatternSystem::Build(table, cost_fn);
    SCWSC_CHECK(system.ok(), "enumeration failed");
    auto result = RunCmcLiteral(system->set_system(), cmc_opts);
    out.cmc_seconds = sw.ElapsedSeconds();
    SCWSC_CHECK(result.ok(), "CMC failed");
    out.cmc_cost = result->solution.total_cost;
    out.cmc_considered = result->sets_considered;
    out.cmc_rounds = result->budget_rounds;
  }
  {  // Optimized CWSC (Fig. 3).
    pattern::PatternStats stats;
    Stopwatch sw;
    auto solution =
        pattern::RunOptimizedCwsc(table, cost_fn, cwsc_opts, &stats);
    out.opt_cwsc_seconds = sw.ElapsedSeconds();
    SCWSC_CHECK(solution.ok(), "optimized CWSC failed");
    out.opt_cwsc_cost = solution->total_cost;
    out.opt_cwsc_considered = stats.patterns_considered;
  }
  {  // Optimized CMC (Fig. 4).
    pattern::PatternStats stats;
    Stopwatch sw;
    auto solution =
        pattern::RunOptimizedCmc(table, cost_fn, cmc_opts, &stats);
    out.opt_cmc_seconds = sw.ElapsedSeconds();
    SCWSC_CHECK(solution.ok(), "optimized CMC failed");
    out.opt_cmc_cost = solution->total_cost;
    out.opt_cmc_considered = stats.patterns_considered;
    out.opt_cmc_rounds = stats.budget_rounds;
  }
  return out;
}

}  // namespace bench
}  // namespace scwsc

#endif  // SCWSC_BENCH_FIG_COMMON_H_
