// Shared runner for the Figure 5-9 benches: times the four solver variants
// (unoptimized/optimized CWSC and CMC) on one instance and reports the
// "patterns considered" counters behind Fig. 6.
//
// Unoptimized timings include full pattern enumeration + set-system
// construction and run the *literal* Fig. 1 / Fig. 2 pseudocode
// (core/literal.h): computing and re-subtracting the marginal benefit of
// every possible pattern is part of those algorithms, which is exactly the
// work the §V-C optimizations remove. (The tuned generic engines in
// cwsc.h/cmc.h — inverted indexes + lazy heaps — are compared against the
// literal ones separately in bench/ablation_engine.)
//
// All four arms dispatch through the SolverRegistry over ONE shared
// InstanceSnapshot. Enumeration is deterministic, so it is timed once per
// snapshot (TimeEnumeration) and the same figure is charged to both
// unoptimized arms of every point sharing that snapshot — the reported
// semantics of the original per-arm builds, without duplicating the work.

#ifndef SCWSC_BENCH_FIG_COMMON_H_
#define SCWSC_BENCH_FIG_COMMON_H_

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/trace.h"

namespace scwsc {
namespace bench {

struct QuadResult {
  /// Pattern enumeration + set-system construction (the caller-supplied
  /// per-snapshot figure), included in cwsc_seconds / cmc_seconds.
  double enumeration_seconds = 0.0;

  double cwsc_seconds = 0.0;      // enumeration + Fig. 2 verbatim
  double opt_cwsc_seconds = 0.0;  // Fig. 3 (no enumeration by design)
  double cmc_seconds = 0.0;       // enumeration + Fig. 1 verbatim
  double opt_cmc_seconds = 0.0;   // Fig. 4 (no enumeration by design)

  std::size_t cwsc_considered = 0;      // enumerated patterns
  std::size_t cmc_considered = 0;       // enumerated patterns x budget rounds
  std::size_t opt_cwsc_considered = 0;  // lattice frontier
  std::size_t opt_cmc_considered = 0;   // lattice frontier, summed over rounds

  std::size_t cmc_rounds = 0;
  std::size_t opt_cmc_rounds = 0;

  double cwsc_cost = 0.0;
  double cmc_cost = 0.0;
  double opt_cwsc_cost = 0.0;
  double opt_cmc_cost = 0.0;

  /// (span name, total seconds) per-phase breakdown of the whole quad from
  /// the shared TraceSession — root dispatch spans plus the algorithm-level
  /// phases (cmc.round, opt_cwsc.descend, ...) they contain.
  std::vector<std::pair<std::string, double>> phases;
};

/// Materializes the snapshot's set-system view (full pattern enumeration)
/// under a "materialize" trace span and returns its duration. Call once per
/// snapshot and pass the figure to every RunQuad sharing it; a second call
/// returns ~0 because the view is cached. Using span timing here keeps the
/// enumeration and solve figures of fig8/fig9 on one clock source (spans
/// and Stopwatch both read std::chrono::steady_clock).
inline double TimeEnumeration(const api::InstancePtr& instance) {
  obs::TraceSession session;
  {
    obs::Span span(&session, "materialize");
    auto system = instance->set_system();
    SCWSC_CHECK(system.ok(), "enumeration failed");
  }
  return session.SpanSeconds("materialize");
}

/// Runs all four variants with the given parameters (paper defaults: k=10,
/// ŝ=0.3, b=1, ε=1 — §VI-A). `enumeration_seconds` is the TimeEnumeration
/// figure for this snapshot, charged to both unoptimized arms.
inline QuadResult RunQuad(const api::InstancePtr& instance, std::size_t k,
                          double fraction, double b, double epsilon,
                          double enumeration_seconds) {
  QuadResult out;
  out.enumeration_seconds = enumeration_seconds;
  const std::vector<std::string> cmc_options = {
      StrFormat("b=%g", b), StrFormat("epsilon=%g", epsilon)};

  // One TraceSession across all four arms: per-arm seconds come from the
  // "solve/<name>" dispatch spans (the same steady clock as enumeration),
  // and PhaseTotals() gives the per-phase breakdown for the JSON rows.
  obs::TraceSession session;
  const auto traced_solve = [&](const char* solver,
                                api::SolveRequest request) {
    request.trace = &session;
    return MustSolve(solver, request);
  };

  {
    auto system = instance->set_system();
    SCWSC_CHECK(system.ok(), "enumeration failed");
    out.cwsc_considered = (*system)->num_sets();
  }
  {  // Unoptimized CWSC: enumeration + Fig. 2 verbatim.
    api::SolveResult r =
        traced_solve("cwsc-literal", MakeRequest(instance, k, fraction));
    out.cwsc_seconds =
        enumeration_seconds + session.SpanSeconds("solve/cwsc-literal");
    out.cwsc_cost = r.total_cost;
  }
  {  // Unoptimized CMC: enumeration + Fig. 1 verbatim.
    api::SolveResult r = traced_solve(
        "cmc-literal", MakeRequest(instance, k, fraction, cmc_options));
    out.cmc_seconds =
        enumeration_seconds + session.SpanSeconds("solve/cmc-literal");
    out.cmc_cost = r.total_cost;
    out.cmc_considered = r.counters.sets_considered;
    out.cmc_rounds = r.counters.budget_rounds;
  }
  {  // Optimized CWSC (Fig. 3).
    api::SolveResult r =
        traced_solve("opt-cwsc", MakeRequest(instance, k, fraction));
    out.opt_cwsc_seconds = session.SpanSeconds("solve/opt-cwsc");
    out.opt_cwsc_cost = r.total_cost;
    out.opt_cwsc_considered = r.counters.sets_considered;
  }
  {  // Optimized CMC (Fig. 4).
    api::SolveResult r = traced_solve(
        "opt-cmc", MakeRequest(instance, k, fraction, cmc_options));
    out.opt_cmc_seconds = session.SpanSeconds("solve/opt-cmc");
    out.opt_cmc_cost = r.total_cost;
    out.opt_cmc_considered = r.counters.sets_considered;
    out.opt_cmc_rounds = r.counters.budget_rounds;
  }
  out.phases = session.PhaseTotals();
  return out;
}

}  // namespace bench
}  // namespace scwsc

#endif  // SCWSC_BENCH_FIG_COMMON_H_
