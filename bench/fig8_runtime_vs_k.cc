// EXP-F8 — Figure 8: running time vs maximum number of patterns k.
//
// Paper setup: k from 2 to 25 at fixed n, ŝ = 0.3. Expected shape: CWSC's
// time increases with k (more iterations); CMC's time *decreases* with k
// because a feasible solution appears at a lower budget, i.e. after fewer
// budget rounds — the rounds column makes that mechanism visible even when
// per-round work (which grows with k) moves the wall-clock the other way
// on a particular data set.

#include <cstdio>

#include "bench/fig_common.h"

int main() {
  using namespace scwsc;
  using namespace scwsc::bench;

  PrintBanner("EXP-F8", "Fig. 8: running time vs k");
  std::printf("%6s %12s %12s %12s %12s %10s\n", "k", "CWSC(s)",
              "optCWSC(s)", "CMC(s)", "optCMC(s)", "CMCrounds");

    // One snapshot (and one timed enumeration) serves the whole k-sweep:
  // the instance does not change with k.
  api::InstancePtr instance = MakeTraceSnapshot(700'000);
  const double enumeration_seconds = TimeEnumeration(instance);

  for (std::size_t k : {2u, 5u, 10u, 15u, 20u, 25u}) {
    QuadResult q = RunQuad(instance, k, 0.3, 1.0, 1.0, enumeration_seconds);
    std::printf("%6zu %12s %12s %12s %12s %10zu\n", k,
                Secs(q.cwsc_seconds).c_str(), Secs(q.opt_cwsc_seconds).c_str(),
                Secs(q.cmc_seconds).c_str(), Secs(q.opt_cmc_seconds).c_str(),
                q.cmc_rounds);
    PrintCsvRow("fig8", {std::to_string(k), Secs(q.cwsc_seconds),
                         Secs(q.opt_cwsc_seconds), Secs(q.cmc_seconds),
                         Secs(q.opt_cmc_seconds),
                         std::to_string(q.cmc_rounds)});
  }
  return 0;
}
